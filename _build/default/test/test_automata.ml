(* Tests for the automata substrate behind Theorem 4.6 and Prop 4.8. *)

open Dynfo_automata

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let rng_of seed = Random.State.make [| seed |]

let random_string rng alphabet len =
  String.init len (fun _ ->
      List.nth alphabet (Random.State.int rng (List.length alphabet)))

(* --- DFA ---------------------------------------------------------------- *)

let test_even_zeros () =
  check tb "empty" true (Dfa.accepts Dfa.even_zeros "");
  check tb "00" true (Dfa.accepts Dfa.even_zeros "0101");
  check tb "0" false (Dfa.accepts Dfa.even_zeros "011")

let test_mod_k () =
  for k = 1 to 5 do
    for v = 0 to 40 do
      let rec bin v = if v = 0 then "" else bin (v / 2) ^ string_of_int (v mod 2) in
      let s = if v = 0 then "0" else bin v in
      if Dfa.accepts (Dfa.mod_k k) s <> (v mod k = 0) then
        Alcotest.failf "mod_%d on %d" k v
    done
  done

let test_contains () =
  let d = Dfa.contains "aba" ~alphabet:[ 'a'; 'b' ] in
  check tb "hit" true (Dfa.accepts d "bbabab");
  check tb "overlap" true (Dfa.accepts d "ababa");
  check tb "miss" false (Dfa.accepts d "bbbbaabb");
  check tb "exact" true (Dfa.accepts d "aba")

let contains_qcheck =
  QCheck.Test.make ~name:"contains DFA == substring search" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 14))
    (fun (seed, len) ->
      let rng = rng_of seed in
      let alphabet = [ 'a'; 'b' ] in
      let patlen = 1 + Random.State.int rng 3 in
      let pat = random_string rng alphabet patlen in
      let s = random_string rng alphabet len in
      let naive =
        let n = String.length s and m = String.length pat in
        let rec go i = i + m <= n && (String.sub s i m = pat || go (i + 1)) in
        go 0
      in
      Dfa.accepts (Dfa.contains pat ~alphabet) s = naive)

let test_no_double_one () =
  check tb "ok" true (Dfa.accepts Dfa.no_double_one "010101");
  check tb "bad" false (Dfa.accepts Dfa.no_double_one "0110")

(* --- Regex / NFA --------------------------------------------------------- *)

let test_regex_parse () =
  List.iter
    (fun (src, s, expected) ->
      let re = Regex.parse src in
      check tb (src ^ " on " ^ s) expected
        (Regex.matches ~alphabet:[ 'a'; 'b'; 'c' ] re s))
    [
      ("(ab)*", "abab", true);
      ("(ab)*", "aba", false);
      ("a|bc", "bc", true);
      ("a|bc", "ab", false);
      ("a+b?", "aaa", true);
      ("a+b?", "aab", true);
      ("a+b?", "b", false);
      (".*c", "abc", true);
      (".*c", "ab", false);
      ("", "", true);
      ("()a", "a", true);
    ]

let test_regex_parse_errors () =
  List.iter
    (fun src ->
      match Regex.parse src with
      | exception Regex.Parse_error _ -> ()
      | _ -> Alcotest.failf "%S should not parse" src)
    [ "("; "a)"; "*a"; "a|*" ]

let gen_regex =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof [ map (fun c -> Regex.Chr c) (oneofl [ 'a'; 'b' ]);
              return Regex.Eps; return Regex.Any ]
    else
      frequency
        [
          (3, map (fun c -> Regex.Chr c) (oneofl [ 'a'; 'b' ]));
          (2, map2 (fun a b -> Regex.Alt (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> Regex.Seq (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> Regex.Star a) (go (depth - 1)));
        ]
  in
  go 3

let regex_pipeline_qcheck =
  QCheck.Test.make
    ~name:"derivative matcher == NFA == subset-construction DFA" ~count:150
    (QCheck.make
       (QCheck.Gen.pair gen_regex (QCheck.Gen.int_range 1 1000))
       ~print:(fun (r, seed) -> Format.asprintf "%a / %d" Regex.pp r seed))
    (fun (re, seed) ->
      let alphabet = [ 'a'; 'b' ] in
      let rng = rng_of seed in
      let nfa = Regex.to_nfa ~alphabet re in
      let dfa = Nfa.to_dfa nfa in
      List.for_all
        (fun len ->
          let s = random_string rng alphabet len in
          let d = Regex.matches ~alphabet re s in
          d = Nfa.accepts nfa s && d = Dfa.accepts dfa s)
        [ 0; 1; 2; 4; 7 ])

(* --- DFA constructions ----------------------------------------------------- *)

let test_dfa_ops_basics () =
  let even = Dfa.even_zeros and no11 = Dfa.no_double_one in
  let both = Dfa_ops.intersect even no11 in
  check tb "in both" true (Dfa.accepts both "0101");
  check tb "fails no11" false (Dfa.accepts both "0110");
  check tb "fails even" false (Dfa.accepts both "01");
  let either = Dfa_ops.union even no11 in
  check tb "one of them" true (Dfa.accepts either "01");
  check tb "neither" false (Dfa.accepts either "011");
  let comp = Dfa_ops.complement even in
  check tb "complement" true (Dfa.accepts comp "0");
  check tb "complement 2" false (Dfa.accepts comp "00")

let dfa_ops_semantics_qcheck =
  QCheck.Test.make ~name:"product DFA == boolean combination of runs"
    ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 16))
    (fun (seed, len) ->
      let a = Dfa.even_zeros and b = Dfa.mod_k 3 in
      let s = random_string (rng_of seed) [ '0'; '1' ] len in
      Dfa.accepts (Dfa_ops.intersect a b) s
      = (Dfa.accepts a s && Dfa.accepts b s)
      && Dfa.accepts (Dfa_ops.union a b) s
         = (Dfa.accepts a s || Dfa.accepts b s)
      && Dfa.accepts (Dfa_ops.difference a b) s
         = (Dfa.accepts a s && not (Dfa.accepts b s))
      && Dfa.accepts (Dfa_ops.complement a) s = not (Dfa.accepts a s))

let test_minimise () =
  (* the subset construction for (ab)* produces extra states; the
     minimal DFA for it over {a,b} has 3 states (including the sink) *)
  let d = Regex.compile ~alphabet:[ 'a'; 'b' ] "(ab)*" in
  let m = Dfa_ops.minimise d in
  check tb "no bigger" true (m.Dfa.n_states <= d.Dfa.n_states);
  check ti "minimal size" 3 m.Dfa.n_states;
  check tb "equivalent" true (Dfa_ops.equivalent d m)

let minimise_qcheck =
  QCheck.Test.make ~name:"minimise preserves the language" ~count:100
    (QCheck.make
       (QCheck.Gen.pair gen_regex (QCheck.Gen.int_range 1 1000))
       ~print:(fun (r, s) -> Format.asprintf "%a/%d" Regex.pp r s))
    (fun (re, seed) ->
      let alphabet = [ 'a'; 'b' ] in
      let d = Nfa.to_dfa (Regex.to_nfa ~alphabet re) in
      let m = Dfa_ops.minimise d in
      Dfa_ops.equivalent d m
      &&
      let rng = rng_of seed in
      List.for_all
        (fun len ->
          let s = random_string rng alphabet len in
          Dfa.accepts d s = Dfa.accepts m s)
        [ 0; 1; 3; 6 ])

let test_equivalence () =
  let a = Regex.compile ~alphabet:[ 'a'; 'b' ] "(a|b)*" in
  let b = Regex.compile ~alphabet:[ 'a'; 'b' ] "(b|a)*" in
  check tb "same language" true (Dfa_ops.equivalent a b);
  let c = Regex.compile ~alphabet:[ 'a'; 'b' ] "a(a|b)*" in
  check tb "different" false (Dfa_ops.equivalent a c);
  check tb "empty difference" true
    (Dfa_ops.is_empty (Dfa_ops.difference b a))

(* --- Monoid / segment tree ----------------------------------------------- *)

let test_monoid_laws () =
  let d = Dfa.mod_k 3 in
  let f = Monoid.of_char d '1' and g = Monoid.of_char d '0' in
  let id = Monoid.identity d.Dfa.n_states in
  check tb "left id" true (Monoid.equal (Monoid.compose id f) f);
  check tb "right id" true (Monoid.equal (Monoid.compose f id) f);
  check tb "assoc" true
    (Monoid.equal
       (Monoid.compose (Monoid.compose f g) f)
       (Monoid.compose f (Monoid.compose g f)));
  check ti "apply" (d.Dfa.delta 0 '1') (Monoid.apply f 0)

let monoid_run_qcheck =
  QCheck.Test.make ~name:"monoid fold == DFA run" ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 20))
    (fun (seed, len) ->
      let d = Dfa.no_double_one in
      let s = random_string (rng_of seed) d.Dfa.alphabet len in
      let m =
        String.fold_left
          (fun acc c -> Monoid.compose acc (Monoid.of_char d c))
          (Monoid.identity d.Dfa.n_states)
          s
      in
      Monoid.apply m d.Dfa.start = Dfa.run d s)

let segtree_qcheck =
  QCheck.Test.make ~name:"segment tree == recompute from scratch" ~count:100
    QCheck.(pair (int_range 1 1000) (int_range 1 24))
    (fun (seed, n) ->
      let rng = rng_of seed in
      let d = Dfa.even_zeros in
      let tree = Segtree.create d n in
      let ok = ref true in
      for _ = 1 to 60 do
        let p = Random.State.int rng n in
        let c =
          if Random.State.bool rng then None
          else Some (List.nth d.Dfa.alphabet (Random.State.int rng 2))
        in
        Segtree.set tree p c;
        if Segtree.accepts tree <> Dfa.accepts d (Segtree.to_string tree) then
          ok := false
      done;
      !ok)

let test_segtree_bounds () =
  let tree = Segtree.create Dfa.even_zeros 4 in
  Alcotest.check_raises "range" (Invalid_argument
    "Segtree: position out of range") (fun () -> Segtree.set tree 4 None)

(* --- Dyck ---------------------------------------------------------------- *)

let p l t = { Dyck.left = l; ptype = t }

let test_dyck_classics () =
  check tb "()" true (Dyck.well_formed [ p true 0; p false 0 ]);
  check tb "([])" true
    (Dyck.well_formed [ p true 0; p true 1; p false 1; p false 0 ]);
  check tb "(]" false (Dyck.well_formed [ p true 0; p false 1 ]);
  check tb ")(" false (Dyck.well_formed [ p false 0; p true 0 ]);
  check tb "(" false (Dyck.well_formed [ p true 0 ]);
  check tb "empty" true (Dyck.well_formed [])

let test_dyck_levels () =
  let s = [ p true 0; p true 1; p false 1; p false 0 ] in
  Alcotest.(check (list int)) "levels" [ 1; 2; 2; 1 ] (Dyck.levels s);
  Alcotest.(check (list (pair int int))) "matches" [ (0, 3); (1, 2) ]
    (Dyck.matches_of s)

let dyck_generator_qcheck =
  QCheck.Test.make ~name:"valid generator produces well-formed strings"
    ~count:200
    QCheck.(pair (int_range 1 1000) (int_range 0 20))
    (fun (seed, len) ->
      Dyck.well_formed (Dyck.random (rng_of seed) ~k:3 ~len ~p_valid:1.0))

let dyck_matches_qcheck =
  QCheck.Test.make
    ~name:"well-formed iff levels positive, balanced, types matched"
    ~count:300
    QCheck.(pair (int_range 1 2000) (int_range 0 12))
    (fun (seed, len) ->
      let s = Dyck.random (rng_of seed) ~k:2 ~len ~p_valid:0.5 in
      let arr = Array.of_list s in
      let lev = Array.of_list (Dyck.levels s) in
      let n = Array.length arr in
      let balanced =
        Array.for_all (fun l -> l >= 1) lev
        && (n = 0
            || (let opens = Array.to_list arr |> List.filter (fun x -> x.Dyck.left) in
                let closes = Array.to_list arr |> List.filter (fun x -> not x.Dyck.left) in
                List.length opens = List.length closes))
      in
      let pairs = Dyck.matches_of s in
      let typed =
        List.for_all (fun (i, j) -> arr.(i).Dyck.ptype = arr.(j).Dyck.ptype) pairs
      in
      let all_matched = 2 * List.length pairs = List.length s in
      Dyck.well_formed s = (balanced && typed && all_matched))

let () =
  Alcotest.run "automata"
    [
      ( "dfa",
        [
          Alcotest.test_case "even zeros" `Quick test_even_zeros;
          Alcotest.test_case "mod k" `Quick test_mod_k;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "no double one" `Quick test_no_double_one;
          QCheck_alcotest.to_alcotest contains_qcheck;
        ] );
      ( "regex",
        [
          Alcotest.test_case "parse and match" `Quick test_regex_parse;
          Alcotest.test_case "parse errors" `Quick test_regex_parse_errors;
          QCheck_alcotest.to_alcotest regex_pipeline_qcheck;
        ] );
      ( "dfa_ops",
        [
          Alcotest.test_case "boolean combinations" `Quick test_dfa_ops_basics;
          Alcotest.test_case "minimise (ab)*" `Quick test_minimise;
          Alcotest.test_case "equivalence" `Quick test_equivalence;
          QCheck_alcotest.to_alcotest dfa_ops_semantics_qcheck;
          QCheck_alcotest.to_alcotest minimise_qcheck;
        ] );
      ( "monoid",
        [
          Alcotest.test_case "laws" `Quick test_monoid_laws;
          QCheck_alcotest.to_alcotest monoid_run_qcheck;
        ] );
      ( "segtree",
        [
          Alcotest.test_case "bounds" `Quick test_segtree_bounds;
          QCheck_alcotest.to_alcotest segtree_qcheck;
        ] );
      ( "dyck",
        [
          Alcotest.test_case "classics" `Quick test_dyck_classics;
          Alcotest.test_case "levels and matches" `Quick test_dyck_levels;
          QCheck_alcotest.to_alcotest dyck_generator_qcheck;
          QCheck_alcotest.to_alcotest dyck_matches_qcheck;
        ] );
    ]
