The problem catalogue lists every reproduced result:

  $ dynfo_cli list | head -6
  NAME             PAPER                  IMPLEMENTATIONS
  parity           Example 3.2            fo, native, static
  reach_u          Theorem 4.1            fo, native, static
  reach_acyclic    Theorem 4.2            fo, native, static
  trans_reduction  Corollary 4.3          fo, static
  msf              Theorem 4.4            fo, native, static

Formula statistics of the Theorem 4.1 program:

  $ dynfo_cli stats reach_u
  reach_u (Theorem 4.1)
    rules                  8
    max_quantifier_depth   2
    max_formula_size       44
    max_aux_arity          3
    query                  s = t | PV(s, t, s)

A scripted session — connect, disconnect, reconnect:

  $ cat > script.txt <<'REQS'
  > set s 0
  > set t 3
  > ins E (0,1)
  > ins E (1,2)
  > ins E (2,3)
  > del E (1,2)
  > ins E (1,3)
  > REQS
  $ dynfo_cli run reach_u -n 6 --script script.txt
  set s 0              query = true
  set t 3              query = false
  ins E (0,1)          query = false
  ins E (1,2)          query = false
  ins E (2,3)          query = true
  del E (1,2)          query = false
  ins E (1,3)          query = true

Malformed or invalid requests are reported without aborting the script:

  $ printf 'ins M (2)\nins E (0,1)\nfrobnicate\n' | dynfo_cli run parity -n 4
  ins M (2)            query = true
  ins E (0,1)          error: Runner.step: invalid request ins E (0,1) for program parity-fo
  frobnicate           error: Request.parse: malformed "frobnicate"

Randomized cross-checking of all implementations of a problem:

  $ dynfo_cli check parity --length 100 --seed 3
  checking parity at n=16 over 100 requests (seed 3): ok (100 checkpoints, 3 implementations)

  $ dynfo_cli check reach_u -n 6 --length 60 --seed 1
  checking reach_u at n=6 over 60 requests (seed 1): ok (60 checkpoints, 3 implementations)

Unknown problems produce a helpful error:

  $ dynfo_cli stats no_such_problem 2>&1 | grep -c 'unknown problem'
  1
