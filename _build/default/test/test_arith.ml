(* Tests for the bit-arithmetic substrate behind Proposition 4.7. *)

open Dynfo_arith

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let w = 10
let modulus = 1 lsl w

let test_of_to_int () =
  List.iter
    (fun v -> check ti (string_of_int v) v (Bitnum.to_int (Bitnum.of_int ~width:w v)))
    [ 0; 1; 5; 511; 1023 ];
  (* two's complement of negatives *)
  check ti "-1" (modulus - 1) (Bitnum.to_int (Bitnum.of_int ~width:w (-1)));
  check ti "-5" (modulus - 5) (Bitnum.to_int (Bitnum.of_int ~width:w (-5)))

let add_qcheck =
  QCheck.Test.make ~name:"add == machine add mod 2^w" ~count:500
    QCheck.(pair (int_range 0 1023) (int_range 0 1023))
    (fun (a, b) ->
      Bitnum.to_int (Bitnum.add (Bitnum.of_int ~width:w a) (Bitnum.of_int ~width:w b))
      = (a + b) mod modulus)

let sub_qcheck =
  QCheck.Test.make ~name:"sub == machine sub mod 2^w" ~count:500
    QCheck.(pair (int_range 0 1023) (int_range 0 1023))
    (fun (a, b) ->
      Bitnum.to_int (Bitnum.sub (Bitnum.of_int ~width:w a) (Bitnum.of_int ~width:w b))
      = ((a - b) mod modulus + modulus) mod modulus)

let mul_qcheck =
  QCheck.Test.make ~name:"mul == machine mul mod 2^w" ~count:500
    QCheck.(pair (int_range 0 1023) (int_range 0 1023))
    (fun (a, b) ->
      Bitnum.to_int (Bitnum.mul (Bitnum.of_int ~width:w a) (Bitnum.of_int ~width:w b))
      = a * b mod modulus)

let shift_qcheck =
  QCheck.Test.make ~name:"shift_left == *2^i mod 2^w" ~count:500
    QCheck.(pair (int_range 0 1023) (int_range 0 9))
    (fun (a, i) ->
      Bitnum.to_int (Bitnum.shift_left (Bitnum.of_int ~width:w a) i)
      = a * (1 lsl i) mod modulus)

let test_neg () =
  check ti "neg 0" 0 (Bitnum.to_int (Bitnum.neg (Bitnum.zero ~width:w)));
  check ti "neg 1" (modulus - 1)
    (Bitnum.to_int (Bitnum.neg (Bitnum.of_int ~width:w 1)))

let test_width_mismatch () =
  Alcotest.check_raises "add" (Invalid_argument "Bitnum.add: width mismatch")
    (fun () ->
      ignore (Bitnum.add (Bitnum.zero ~width:4) (Bitnum.zero ~width:5)))

let test_set_persistent () =
  let x = Bitnum.zero ~width:4 in
  let y = Bitnum.set x 2 true in
  check tb "original untouched" false (Bitnum.get x 2);
  check tb "copy set" true (Bitnum.get y 2)

(* --- Dyn_mult: the native Prop 4.7 algorithm --------------------------- *)

let dyn_mult_qcheck =
  QCheck.Test.make
    ~name:"dynamic product tracks x*y mod 2^w under random bit flips"
    ~count:100
    QCheck.(int_range 1 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let st = ref (Dyn_mult.create ~width:w) in
      let ok = ref true in
      for _ = 1 to 100 do
        let i = Random.State.int rng w in
        let b = Random.State.bool rng in
        st :=
          (if Random.State.bool rng then Dyn_mult.set_x !st i b
           else Dyn_mult.set_y !st i b);
        let expect =
          Bitnum.to_int (Dyn_mult.x !st) * Bitnum.to_int (Dyn_mult.y !st)
          mod modulus
        in
        if Bitnum.to_int (Dyn_mult.product !st) <> expect then ok := false
      done;
      !ok)

let test_dyn_mult_noop () =
  let st = Dyn_mult.create ~width:4 in
  let st = Dyn_mult.set_x st 1 true in
  let st' = Dyn_mult.set_x st 1 true in
  check tb "no-op set" true
    (Bitnum.equal (Dyn_mult.product st) (Dyn_mult.product st'))

let () =
  Alcotest.run "arith"
    [
      ( "bitnum",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "neg" `Quick test_neg;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
          Alcotest.test_case "persistent set" `Quick test_set_persistent;
          QCheck_alcotest.to_alcotest add_qcheck;
          QCheck_alcotest.to_alcotest sub_qcheck;
          QCheck_alcotest.to_alcotest mul_qcheck;
          QCheck_alcotest.to_alcotest shift_qcheck;
        ] );
      ( "dyn_mult",
        [
          Alcotest.test_case "no-op updates" `Quick test_dyn_mult_noop;
          QCheck_alcotest.to_alcotest dyn_mult_qcheck;
        ] );
    ]
