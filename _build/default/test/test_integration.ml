(* Cross-library integration tests: the full problem registry swept
   through the harness, the semi-dynamic and approximation extensions,
   and the Ehrenfeucht-Fraissé demonstrations of the paper's premise
   that these queries are not static first-order. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- the whole registry, one sweep each --------------------------------- *)

let test_registry_sweep () =
  List.iter
    (fun (e : Registry.entry) ->
      let impls = Registry.impls e in
      check tb (e.name ^ " has at least two implementations") true
        (List.length impls >= 2 || e.name = "parity");
      for seed = 1 to 2 do
        let rng = Random.State.make [| seed; 123 |] in
        let reqs = e.workload rng ~size:e.default_size ~length:40 in
        match Harness.compare_all ~size:e.default_size impls reqs with
        | Harness.Ok _ -> ()
        | m ->
            Alcotest.failf "%s (%s) seed %d: %s" e.name e.paper_ref seed
              (Format.asprintf "%a" Harness.pp_outcome m)
      done)
    Registry.all

let test_registry_names_unique () =
  let names = List.map (fun (e : Registry.entry) -> e.name) Registry.all in
  check ti "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_workloads_valid () =
  List.iter
    (fun (e : Registry.entry) ->
      let rng = Random.State.make [| 5 |] in
      let reqs = e.workload rng ~size:e.default_size ~length:30 in
      check tb (e.name ^ " workload valid") true
        (List.for_all
           (Request.valid e.program.input_vocab ~size:e.default_size)
           reqs))
    Registry.all

(* --- Dyn_s-FO: insert-only REACH (Section 3.1) -------------------------- *)

let test_semi_dynamic_reach () =
  for seed = 1 to 6 do
    let rng = Random.State.make [| seed |] in
    let size = 5 + (seed mod 3) in
    let reqs = Semi_dynamic.workload rng ~size ~length:70 in
    match
      Harness.compare_all ~size
        [ Dyn.of_program Semi_dynamic.reach_program; Semi_dynamic.native;
          Semi_dynamic.static ]
        reqs
    with
    | Harness.Ok _ -> ()
    | m ->
        Alcotest.failf "semi_reach seed %d: %s" seed
          (Format.asprintf "%a" Harness.pp_outcome m)
  done

let test_semi_dynamic_cycles_ok () =
  (* the insert rule is correct on cyclic graphs — the restriction to
     acyclic histories is only needed for deletions *)
  let s = ref (Runner.init Semi_dynamic.reach_program ~size:4) in
  let go r = s := Runner.step !s r in
  List.iter go
    [ Request.ins "E" [ 0; 1 ]; Request.ins "E" [ 1; 2 ];
      Request.ins "E" [ 2; 0 ];  (* close a cycle *)
      Request.set "s" 2; Request.set "t" 1 ];
  check tb "around the cycle" true (Runner.query !s)

let test_semi_dynamic_deletion_breaks () =
  (* demonstrate the restriction is essential: after a delete the
     maintained P is stale *)
  let s = ref (Runner.init Semi_dynamic.reach_program ~size:4) in
  let go r = s := Runner.step !s r in
  List.iter go
    [ Request.ins "E" [ 0; 1 ]; Request.set "s" 0; Request.set "t" 1 ];
  check tb "edge present" true (Runner.query !s);
  go (Request.del "E" [ 0; 1 ]);
  (* the program has no delete rule: P keeps the stale tuple *)
  check tb "stale after unsupported delete" true (Runner.query !s);
  check tb "but the input lost the edge" false
    (Structure.mem (Runner.input !s) "E" [| 0; 1 |])

(* --- vertex cover 2-approximation ([P94] remark) ------------------------- *)

let test_vertex_cover_invariant () =
  for seed = 1 to 5 do
    let rng = Random.State.make [| seed; 9 |] in
    let size = 6 in
    let reqs = Vertex_cover.workload rng ~size ~length:60 in
    let s = ref (Runner.init Vertex_cover.program ~size) in
    List.iteri
      (fun i r ->
        s := Runner.step !s r;
        match Vertex_cover.check_cover !s with
        | Result.Ok () -> ()
        | Error m ->
            Alcotest.failf "cover broken (seed %d, request %d): %s" seed i m)
      reqs
  done

let test_vertex_cover_scenario () =
  let s = ref (Runner.init Vertex_cover.program ~size:6) in
  let go r = s := Runner.step !s r in
  check tb "empty cover for empty graph" true
    (Vertex_cover.cover_of !s = []);
  (* a star: optimal cover is the centre alone; matching-based cover has
     two vertices — within factor 2 *)
  List.iter go
    [ Request.ins "E" [ 0; 1 ]; Request.ins "E" [ 0; 2 ];
      Request.ins "E" [ 0; 3 ] ];
  let cover = Vertex_cover.cover_of !s in
  check ti "star cover size" 2 (List.length cover);
  check tb "centre covered" true (List.mem 0 cover);
  check ti "optimum is 1"
    1
    (Vertex_cover.minimum_cover_size
       (Dynfo_graph.Graph.of_structure
          (Structure.with_rel (Runner.input !s) "E"
             (Relation.symmetric_closure
                (Structure.rel (Runner.input !s) "E")))
          "E"))

(* --- EF games: the "not static FO" premise -------------------------------- *)

let structure_of_graph g =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  Dynfo_graph.Graph.to_structure
    (Structure.create ~size:(Dynfo_graph.Graph.n_vertices g) v)
    "E" g

let cycle n = structure_of_graph (Dynfo_graph.Generate.cycle n)

let two_cycles k =
  let g = Dynfo_graph.Graph.create (2 * k) in
  for i = 0 to k - 1 do
    Dynfo_graph.Graph.add_uedge g i ((i + 1) mod k);
    Dynfo_graph.Graph.add_uedge g (k + i) (k + ((i + 1) mod k))
  done;
  structure_of_graph g

let test_ef_reflexive () =
  check tb "C6 ~ C6 (3 rounds)" true
    (Ef_game.equivalent ~rounds:3 (cycle 6) (cycle 6));
  (* isomorphic but differently-labelled structures *)
  let p = structure_of_graph (Dynfo_graph.Generate.path 4) in
  let p' =
    let g = Dynfo_graph.Graph.create 4 in
    List.iter (fun (u, v) -> Dynfo_graph.Graph.add_uedge g u v)
      [ (3, 1); (1, 0); (0, 2) ];
    structure_of_graph g
  in
  check tb "isomorphic paths" true (Ef_game.equivalent ~rounds:3 p p')

let test_ef_distinguishes () =
  let p3 = structure_of_graph (Dynfo_graph.Generate.path 3) in
  let k3 = structure_of_graph (Dynfo_graph.Generate.complete 3) in
  check tb "K3 vs P3 at two rounds" true
    (Ef_game.distinguishing_rounds k3 p3 = Some 2);
  (* an edge vs no edge: one round is not enough (atoms need two
     pebbles), two rounds suffice *)
  let e1 =
    structure_of_graph
      (let g = Dynfo_graph.Graph.create 3 in
       Dynfo_graph.Graph.add_uedge g 0 1;
       g)
  in
  let e0 = structure_of_graph (Dynfo_graph.Graph.create 3) in
  check tb "edge vs empty" true
    (Ef_game.distinguishing_rounds e1 e0 = Some 2)

let test_ef_connectivity_not_rank2 () =
  (* the paper's premise, executably: a connected and a disconnected
     graph that agree on all sentences of quantifier rank <= 2 — so no
     rank-2 FO sentence defines connectivity over <E> *)
  check tb "C10 ~2~ C5+C5" true
    (Ef_game.equivalent ~rounds:2 (cycle 10) (two_cycles 5));
  check tb "and they differ on connectivity" true
    (Dynfo_graph.Traversal.connected
       (Dynfo_graph.Graph.of_structure (cycle 10) "E")
    && not
         (Dynfo_graph.Traversal.connected
            (Dynfo_graph.Graph.of_structure (two_cycles 5) "E")))

let test_ef_connectivity_not_rank3 () =
  (* rank 3 still cannot tell them apart *)
  check tb "C10 ~3~ C5+C5" true
    (Ef_game.equivalent ~rounds:3 (cycle 10) (two_cycles 5))

(* --- regular languages across representations ----------------------------- *)

let test_regular_minimised_agrees () =
  (* the Dyn-FO program is determined by the language, not the automaton:
     a DFA and its minimisation must answer identically forever *)
  let alphabet = [ 'a'; 'b' ] in
  List.iter
    (fun pattern ->
      let d = Dynfo_automata.Regex.compile ~alphabet pattern in
      let m = Dynfo_automata.Dfa_ops.minimise d in
      check tb (pattern ^ " minimised is no larger") true
        (m.Dynfo_automata.Dfa.n_states <= d.Dynfo_automata.Dfa.n_states);
      for seed = 1 to 3 do
        let rng = Random.State.make [| seed; 17 |] in
        let reqs = Regular.workload d rng ~size:8 ~length:50 in
        (* the two programs have different relation names (per-character
           indices are shared since alphabets coincide), so drive them
           separately and compare answers *)
        let a = (Dyn.of_program (Regular.program d)).create 8 () in
        let b = (Dyn.of_program (Regular.program m)).create 8 () in
        List.iteri
          (fun i r ->
            a.apply r;
            b.apply r;
            if a.query () <> b.query () then
              Alcotest.failf "%s: diverged at request %d (seed %d)" pattern i
                seed)
          reqs
      done)
    [ "(ab)*"; "a*b*"; ".*ba.*"; "(a|ba)*b?" ]

(* --- end-to-end: a request script through FO REACH_u and its work ------- *)

let test_script_pipeline () =
  let script =
    [ "set s 0"; "set t 3"; "ins E (0,1)"; "ins E (1,2)"; "ins E (2,3)";
      "del E (1,2)"; "ins E (1,3)" ]
  in
  (* initially s = t = 0, so the first query is trivially true *)
  let expected = [ true; false; false; false; true; false; true ] in
  let s = ref (Runner.init Reach_u.program ~size:6) in
  List.iter2
    (fun line want ->
      s := Runner.step !s (Request.parse line);
      check tb line want (Runner.query !s))
    script expected

let () =
  Alcotest.run "integration"
    [
      ( "registry",
        [
          Alcotest.test_case "full sweep" `Slow test_registry_sweep;
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "workloads valid" `Quick
            test_registry_workloads_valid;
        ] );
      ( "semi-dynamic (Dyn_s-FO)",
        [
          Alcotest.test_case "insert-only REACH == oracle" `Slow
            test_semi_dynamic_reach;
          Alcotest.test_case "cycles are fine" `Quick
            test_semi_dynamic_cycles_ok;
          Alcotest.test_case "deletion breaks it (by design)" `Quick
            test_semi_dynamic_deletion_breaks;
        ] );
      ( "vertex cover 2-approx",
        [
          Alcotest.test_case "valid and within factor 2" `Slow
            test_vertex_cover_invariant;
          Alcotest.test_case "star scenario" `Quick test_vertex_cover_scenario;
        ] );
      ( "ef-games (not static FO)",
        [
          Alcotest.test_case "reflexivity / isomorphism" `Quick
            test_ef_reflexive;
          Alcotest.test_case "distinguishes when it should" `Quick
            test_ef_distinguishes;
          Alcotest.test_case "connectivity beyond rank 2" `Quick
            test_ef_connectivity_not_rank2;
          Alcotest.test_case "connectivity beyond rank 3" `Slow
            test_ef_connectivity_not_rank3;
        ] );
      ( "regular-representations",
        [
          Alcotest.test_case "DFA vs its minimisation" `Slow
            test_regular_minimised_agrees;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "scripted REACH_u" `Quick test_script_pipeline ]
      );
    ]
