(* Quickstart: define a Dyn-FO program from scratch (PARITY, Example 3.2
   of the paper), run it, and then drive the library's REACH_u program —
   all through the public API.

   Run with: dune exec examples/quickstart.exe *)

open Dynfo_logic
open Dynfo

let () =
  print_endline "== 1. PARITY from scratch (Example 3.2) ==";
  (* Input vocabulary <M^1>; auxiliary boolean b (a 0-ary relation). *)
  let input_vocab = Vocab.make ~rels:[ ("M", 1) ] ~consts:[] in
  let aux_vocab = Vocab.make ~rels:[ ("b", 0) ] ~consts:[] in
  (* The update formulas, in the paper's own notation, parsed from
     strings. *)
  let parity =
    Program.make ~name:"parity" ~input_vocab ~aux_vocab
      ~init:(fun n ->
        Structure.create ~size:n (Vocab.union input_vocab aux_vocab))
      ~on_ins:
        [
          ( "M",
            Program.update ~params:[ "a" ]
              [
                Program.rule_s "M" [ "x" ] "M(x) | x = a";
                Program.rule_s "b" [] "(b() & M(a)) | (~b() & ~M(a))";
              ] );
        ]
      ~on_del:
        [
          ( "M",
            Program.update ~params:[ "a" ]
              [
                Program.rule_s "M" [ "x" ] "M(x) & x != a";
                Program.rule_s "b" [] "(b() & ~M(a)) | (~b() & M(a))";
              ] );
        ]
      ~query:(Parser.parse "b()") ()
  in
  let state = ref (Runner.init parity ~size:16) in
  let show req =
    state := Runner.step !state (Request.parse req);
    Printf.printf "  %-12s -> parity odd? %b\n" req (Runner.query !state)
  in
  List.iter show [ "ins M (3)"; "ins M (7)"; "ins M (3)"; "del M (7)"; "ins M (0)" ];

  print_endline "\n== 2. Undirected reachability (Theorem 4.1) ==";
  (* The library ships the paper's REACH_u program; every update is a
     first-order redefinition of the spanning forest F and the path-via
     relation PV. *)
  let open Dynfo_programs in
  let state = ref (Runner.init Reach_u.program ~size:8) in
  let show req =
    state := Runner.step !state (Request.parse req);
    Printf.printf "  %-14s -> s-t connected? %b\n" req (Runner.query !state)
  in
  List.iter show
    [
      "set s 0"; "set t 4";
      "ins E (0,1)"; "ins E (1,2)"; "ins E (2,3)"; "ins E (3,4)";
      "ins E (0,4)";
      "del E (2,3)";  (* still connected through the chord *)
      "del E (0,4)";  (* now split *)
    ];

  print_endline "\n== 3. What the updates cost ==";
  let st = Runner.init Reach_u.program ~size:8 in
  let st = Runner.run st [ Request.parse "ins E (0,1)" ] in
  let _, work = Runner.step_work st (Request.parse "ins E (1,2)") in
  Printf.printf
    "  one edge insertion evaluated %d first-order atoms (FO = CRAM[1]:\n\
    \  constant parallel time, polynomial work)\n"
    work;
  List.iter
    (fun (k, v) -> Printf.printf "  %-22s %d\n" k v)
    (Program.stats Reach_u.program)
