(* Incremental build-dependency analysis: modules and their "depends
   on" arcs form a DAG; as the programmer edits imports we maintain
   (1) reachability — "does changing X force rebuilding Y?" (Theorem
   4.2) and (2) the transitive reduction — the minimal dependency
   diagram to display (Corollary 4.3) — both by first-order updates.

   Run with: dune exec examples/build_deps.exe *)

open Dynfo_logic
open Dynfo
open Dynfo_programs

let modules = [| "main"; "parser"; "lexer"; "ast"; "types"; "util" |]
let id name =
  let rec go i = if modules.(i) = name then i else go (i + 1) in
  go 0

let () =
  let n = Array.length modules in
  let reach = ref (Runner.init Reach_acyclic.program ~size:n) in
  let tr = ref (Runner.init Trans_reduction.program ~size:n) in
  let apply r =
    reach := Runner.step !reach r;
    tr := Runner.step !tr r
  in
  let depends a b = apply (Request.ins "E" [ id a; id b ]) in
  let undepends a b = apply (Request.del "E" [ id a; id b ]) in
  let forces a b =
    reach := Runner.run !reach [ Request.Set ("s", id a); Request.Set ("t", id b) ];
    Runner.query !reach
  in
  let diagram () =
    let rel = Structure.rel (Runner.structure !tr) "TR" in
    Relation.fold
      (fun t acc ->
        Printf.sprintf "%s->%s" modules.(t.(0)) modules.(t.(1)) :: acc)
      rel []
    |> List.rev |> String.concat " "
  in

  print_endline "building the dependency graph:";
  depends "main" "parser";
  depends "parser" "lexer";
  depends "parser" "ast";
  depends "ast" "types";
  depends "lexer" "util";
  depends "main" "util";
  Printf.printf "  diagram: %s\n" (diagram ());
  Printf.printf "  does editing types force rebuilding main? %b\n"
    (forces "main" "types");
  Printf.printf "  does editing util force rebuilding ast?   %b\n"
    (forces "ast" "util");

  print_endline "\nmain now imports ast directly (a redundant arc):";
  depends "main" "ast";
  Printf.printf "  diagram: %s\n" (diagram ());
  Printf.printf "  (main->ast hidden: already implied via parser)\n";

  print_endline "\nparser stops importing ast:";
  undepends "parser" "ast";
  Printf.printf "  diagram: %s\n" (diagram ());
  Printf.printf "  main->ast is now essential; still forces types? %b\n"
    (forces "main" "types");

  print_endline "\ncross-check against a static recomputation:";
  let g = Dynfo_graph.Graph.of_structure (Runner.input !tr) "E" in
  let static_tr = Dynfo_graph.Closure.transitive_reduction g in
  let dyn_tr = Structure.rel (Runner.structure !tr) "TR" in
  let same =
    List.for_all
      (fun (u, v) -> Relation.mem dyn_tr [| u; v |])
      (Dynfo_graph.Graph.edges static_tr)
    && Relation.cardinal dyn_tr
       = List.length (Dynfo_graph.Graph.edges static_tr)
  in
  Printf.printf "  dynamic TR == static TR: %b\n" same;
  if not same then exit 1
