(* A dynamic social network: members befriend and unfriend each other,
   and between events we answer "are these two members connected?" and
   "is the network bipartite (two-colourable)?" without ever recomputing
   from scratch — the scenario the paper's introduction motivates
   ("a fairly large object being worked on over a period of time").

   The same request stream drives three implementations side by side:
   the paper's first-order program, the native forest structure, and a
   recompute-everything baseline; the example asserts they agree and
   reports how much first-order work the updates cost.

   Run with: dune exec examples/social_network.exe *)

open Dynfo
open Dynfo_programs

let n_members = 12
let n_events = 220

let () =
  Printf.printf "Social network with %d members, %d friendship events\n\n"
    n_members n_events;
  let rng = Random.State.make [| 2024 |] in
  let events = Reach_u.workload rng ~size:n_members ~length:n_events in

  (* three implementations, one request stream *)
  let fo = (Dyn.of_program Reach_u.program).create n_members () in
  let native = Reach_u.native.create n_members () in
  let baseline = Reach_u.static.create n_members () in

  let disagreements = ref 0 in
  let connected_count = ref 0 in
  let total_work = ref 0 in
  List.iteri
    (fun i req ->
      Dynfo_logic.Eval.reset_work ();
      fo.apply req;
      total_work := !total_work + Dynfo_logic.Eval.work ();
      native.apply req;
      baseline.apply req;
      let a = fo.query () and b = native.query () and c = baseline.query () in
      if a <> b || b <> c then incr disagreements;
      if a then incr connected_count;
      if i < 8 || i mod 50 = 0 then
        Printf.printf "  event %3d: %-14s connected(s,t) = %b\n" i
          (Request.to_string req) a)
    events;

  Printf.printf "\n%d/%d query points answered 'connected'\n" !connected_count
    n_events;
  Printf.printf "implementations disagreed %d times (expected 0)\n"
    !disagreements;
  Printf.printf "average FO work per event: %d atom evaluations\n"
    (!total_work / n_events);

  (* community structure: switch to the bipartiteness program to watch
     the "two rival camps" property appear and disappear *)
  print_endline "\nBipartiteness of the same event stream:";
  let bip = (Dyn.of_program Bipartite_prog.program).create n_members () in
  let flips = ref 0 in
  let last = ref true in
  List.iter
    (fun req ->
      bip.apply req;
      let now = bip.query () in
      if now <> !last then begin
        incr flips;
        last := now
      end)
    events;
  Printf.printf "bipartite at the end: %b (status flipped %d times)\n" !last
    !flips;
  if !disagreements > 0 then exit 1
