(* Monitoring an edited line against a regular-language policy
   (Theorem 4.6): the "document" is a buffer of character positions that
   an editor changes one position at a time, and after each keystroke we
   ask whether the current content matches a regex — maintained
   dynamically instead of re-scanned.

   Policy here: the line must consist of 'a'/'b' blocks and must not
   contain the forbidden factor "bb". We compile the regex to a DFA, let
   the library derive the Dyn-FO program and the paper's log-n tree, and
   drive both with the same edits.

   Run with: dune exec examples/log_monitor.exe *)

open Dynfo
open Dynfo_programs
open Dynfo_automata

let buffer_len = 12

let () =
  let alphabet = [ 'a'; 'b' ] in
  (* "no two consecutive b's": complement of .*bb.* *)
  let forbidden = Regex.compile ~alphabet ".*bb.*" in
  let policy =
    Dfa.make ~n_states:forbidden.Dfa.n_states ~alphabet
      ~delta:forbidden.Dfa.delta ~start:forbidden.Dfa.start
      ~accepting:(fun q -> not (forbidden.Dfa.accepting q))
  in
  Printf.printf "Policy: no \"bb\" factor; buffer of %d positions\n\n"
    buffer_len;

  let fo = (Dyn.of_program (Regular.program policy)).create buffer_len () in
  let tree = (Regular.native policy).create buffer_len () in

  let type_char p c =
    let r = Request.ins (Regular.rel_of_char policy c) [ p ] in
    fo.apply r;
    tree.apply r
  in
  let erase p c =
    let r = Request.del (Regular.rel_of_char policy c) [ p ] in
    fo.apply r;
    tree.apply r
  in
  let show action =
    let ok_fo = fo.query () and ok_tree = tree.query () in
    assert (ok_fo = ok_tree);
    Printf.printf "  %-28s policy %s\n" action
      (if ok_fo then "OK" else "VIOLATED")
  in

  show "(empty buffer)";
  type_char 0 'a'; show "type 'a' at 0";
  type_char 1 'b'; show "type 'b' at 1";
  type_char 2 'b'; show "type 'b' at 2   <- bb!";
  erase 1 'b'; show "erase position 1";
  type_char 1 'a'; show "type 'a' at 1";
  (* empty positions do not separate: the string is the concatenation
     of the non-empty positions, so 'b' at 5 lands right after the 'b'
     at 2 *)
  type_char 5 'b'; show "type 'b' at 5   <- bb across gap!";
  type_char 4 'a'; show "type 'a' at 4 (separates)";
  erase 4 'a'; show "erase position 4 <- bb again";

  print_endline "\nRandomised soak: FO program vs log-n tree vs full rescan";
  let rng = Random.State.make [| 99 |] in
  let reqs = Regular.workload policy rng ~size:buffer_len ~length:400 in
  match
    Harness.compare_all ~size:buffer_len
      [ Dyn.of_program (Regular.program policy); Regular.native policy;
        Regular.static policy ]
      reqs
  with
  | Harness.Ok n -> Printf.printf "agreed on all %d checkpoints\n" n
  | m ->
      Format.printf "%a@." Harness.pp_outcome m;
      exit 1
