(* Monitoring a monotone circuit as its design evolves — the CVAL /
   REACH_a story of Section 5. CVAL is P-complete, so (unless P
   collapses into constant parallel time) no plain Dyn-FO program
   maintains it; the paper's Theorem 5.14 shows the padded version is in
   Dyn-FO because a real change buys n first-order steps. This example
   shows both halves:

   1. the CVAL <-> alternating-reachability encoding on an evolving
      circuit (gates re-evaluated from scratch per edit), and
   2. the padded dynamic program, driven by full sweeps, answering
      the same question with first-order steps only.

   Run with: dune exec examples/circuit_monitor.exe *)

open Dynfo
open Dynfo_graph

let () =
  print_endline "== A monotone circuit under design changes ==";
  (* gates: 0,1,2 inputs; 3 = AND(0,1); 4 = OR(3,2); evaluate gate 4 *)
  let base inputs : Alternating.circuit =
    [|
      Alternating.Input inputs.(0);
      Alternating.Input inputs.(1);
      Alternating.Input inputs.(2);
      Alternating.And [ 0; 1 ];
      Alternating.Or [ 3; 2 ];
    |]
  in
  List.iter
    (fun inputs ->
      let c = base inputs in
      let alt, tt = Alternating.circuit_to_alternating c in
      let direct = Alternating.cval c 4 in
      let via_reach = Alternating.reach_a alt 4 tt in
      assert (direct = via_reach);
      Printf.printf "  inputs %b,%b,%b -> OR(AND(i0,i1), i2) = %b (CVAL == REACH_a: %b)\n"
        inputs.(0) inputs.(1) inputs.(2) direct (direct = via_reach))
    [ [| true; true; false |]; [| true; false; false |];
      [| false; false; true |] ];

  print_endline "\n== The padded dynamic program (Theorem 5.14) ==";
  let n = 5 in
  let state = ref (Runner.init Dynfo_programs.Pad_reach_a.program ~size:n) in
  let sweep describe mk =
    for c = 0 to n - 1 do
      state := Runner.step !state (mk c)
    done;
    Printf.printf "  %-40s query(max ->> min) = %b\n" describe
      (Runner.query !state)
  in
  (* build: vertex 4 is an OR over {3, 2}; 3 is an AND over {0, 1}...
     encoded directly as the alternating graph, target = vertex 0 *)
  sweep "edge 4 -> 2" (fun c -> Request.ins "Ep" [ c; 4; 2 ]);
  sweep "edge 4 -> 3" (fun c -> Request.ins "Ep" [ c; 4; 3 ]);
  sweep "edge 3 -> 0 (0 is the target)" (fun c -> Request.ins "Ep" [ c; 3; 0 ]);
  sweep "mark 4 universal (an AND gate now)" (fun c -> Request.ins "Up" [ c; 4 ]);
  sweep "edge 2 -> 0" (fun c -> Request.ins "Ep" [ c; 2; 0 ]);
  sweep "remove 2 -> 0 again" (fun c -> Request.del "Ep" [ c; 2; 0 ]);
  sweep "back to OR (unmark 4)" (fun c -> Request.del "Up" [ c; 4 ]);

  (* the oracle agrees at every sweep boundary *)
  let ok =
    Dynfo_programs.Pad_reach_a.oracle (Runner.input !state)
    = Runner.query !state
  in
  Printf.printf "\noracle agreement at the end: %b\n" ok;
  if not ok then exit 1
