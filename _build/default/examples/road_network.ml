(* Maintaining a minimum spanning forest of a road network (Theorem 4.4)
   while roads open and close: the MSF gives the cheapest backbone that
   keeps every reachable pair of towns connected.

   The example builds a small grid of towns, opens weighted roads, then
   closes and re-opens some — after every change the dynamically
   maintained forest is compared against a from-scratch Kruskal run.

   Run with: dune exec examples/road_network.exe *)

open Dynfo_logic
open Dynfo
open Dynfo_programs

let n_towns = 7

let () =
  Printf.printf "Road network on %d towns (weights are travel costs)\n\n"
    n_towns;
  let state = ref (Runner.init Msf.program ~size:n_towns) in
  let backbone () =
    let f = Structure.rel (Runner.structure !state) "F" in
    Relation.fold
      (fun t acc -> if t.(0) < t.(1) then (t.(0), t.(1)) :: acc else acc)
      f []
    |> List.rev
  in
  let kruskal_check () =
    match Msf.msf_invariant !state with
    | Result.Ok () -> "matches Kruskal"
    | Error m -> "MISMATCH: " ^ m
  in
  let event description reqs =
    List.iter (fun r -> state := Runner.step !state (Request.parse r)) reqs;
    Printf.printf "%-42s backbone: %s (%s)\n" description
      (String.concat " "
         (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (backbone ())))
      (kruskal_check ())
  in
  event "open road 0-1 (cost 2)" [ "ins E (0,1,2)" ];
  event "open road 1-2 (cost 3)" [ "ins E (1,2,3)" ];
  event "open road 0-2 (cost 1): swaps out 1-2" [ "ins E (0,2,1)" ];
  event "open roads to town 3" [ "ins E (2,3,2)"; "ins E (1,3,5)" ];
  event "close cheap road 0-2: 1-2 returns" [ "del E (0,2,1)" ];
  event "open far towns 4,5,6" [ "ins E (4,5,1)"; "ins E (5,6,1)" ];
  event "bridge the two regions (cost 6)" [ "ins E (3,4,6)" ];
  event "cheaper bridge (cost 2) replaces it" [ "ins E (2,4,2)" ];
  event "close road 1-2: reroute via 1-3?" [ "del E (1,2,3)" ];

  (* total backbone cost *)
  let weight_of u v =
    let e = Structure.rel (Runner.structure !state) "E" in
    Relation.fold
      (fun t acc -> if t.(0) = u && t.(1) = v then t.(2) else acc)
      e 0
  in
  let total =
    List.fold_left (fun acc (u, v) -> acc + weight_of u v) 0 (backbone ())
  in
  Printf.printf "\nfinal backbone cost: %d\n" total;

  (* sanity: connectivity questions on the maintained forest *)
  List.iter
    (fun (s, t) ->
      state := Runner.step !state (Request.Set ("s", s));
      state := Runner.step !state (Request.Set ("t", t));
      Printf.printf "is %d-%d a backbone road? %b\n" s t (Runner.query !state))
    [ (0, 1); (1, 2); (2, 4) ]
