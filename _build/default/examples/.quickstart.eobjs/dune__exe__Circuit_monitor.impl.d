examples/circuit_monitor.ml: Alternating Array Dynfo Dynfo_graph Dynfo_programs List Printf Request Runner
