examples/log_monitor.ml: Dfa Dyn Dynfo Dynfo_automata Dynfo_programs Format Harness Printf Random Regex Regular Request
