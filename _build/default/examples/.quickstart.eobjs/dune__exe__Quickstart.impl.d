examples/quickstart.ml: Dynfo Dynfo_logic Dynfo_programs List Parser Printf Program Reach_u Request Runner Structure Vocab
