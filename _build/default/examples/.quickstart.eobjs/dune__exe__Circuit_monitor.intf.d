examples/circuit_monitor.mli:
