examples/social_network.ml: Bipartite_prog Dyn Dynfo Dynfo_logic Dynfo_programs List Printf Random Reach_u Request
