examples/quickstart.mli:
