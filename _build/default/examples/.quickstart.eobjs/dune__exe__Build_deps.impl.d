examples/build_deps.ml: Array Dynfo Dynfo_graph Dynfo_logic Dynfo_programs List Printf Reach_acyclic Relation Request Runner String Structure Trans_reduction
