examples/build_deps.mli:
