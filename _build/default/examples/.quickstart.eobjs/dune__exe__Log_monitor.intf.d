examples/log_monitor.mli:
