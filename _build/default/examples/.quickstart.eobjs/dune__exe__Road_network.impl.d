examples/road_network.ml: Array Dynfo Dynfo_logic Dynfo_programs List Msf Printf Relation Request Result Runner String Structure
