(* The set-at-a-time bitset backend (lib/logic/bitrel, bulk_eval;
   lib/engine/par_bulk): Bitrel representation properties, QCheck
   equivalence of Bulk_eval against the tuple-at-a-time Eval on random
   formulas and structures, the whole registry stepped in lockstep on
   both backends, and the pool-parallel bulk path.

   This suite is also the CI gate that keeps the bulk path from
   rotting: it replays every registry program's update rules (temps
   included) through Runner ~backend:`Bulk and compares the full
   combined structure — not just query answers — against the default
   backend after every request. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
open Dynfo_engine

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- Bitrel representation ---------------------------------------------- *)

let random_relation rng ~size ~arity =
  let count = Random.State.int rng (size * size * 2) in
  let tuples =
    List.init count (fun _ ->
        Array.init arity (fun _ -> Random.State.int rng size))
  in
  Relation.of_list ~arity tuples

let bitrel_roundtrip =
  QCheck.Test.make ~name:"of_relation |> to_relation = id" ~count:300
    QCheck.(triple (int_range 1 6) (int_range 0 3) (int_range 0 1000000))
    (fun (size, arity, seed) ->
      let rng = Random.State.make [| seed |] in
      let r = random_relation rng ~size ~arity in
      let b = Bitrel.of_relation ~size r in
      Relation.equal r (Bitrel.to_relation b)
      && Bitrel.popcount b = Relation.cardinal r)

let bitrel_kernels =
  QCheck.Test.make ~name:"word kernels agree with Relation algebra"
    ~count:300
    QCheck.(triple (int_range 1 6) (int_range 0 3) (int_range 0 1000000))
    (fun (size, arity, seed) ->
      let rng = Random.State.make [| seed |] in
      let r1 = random_relation rng ~size ~arity in
      let r2 = random_relation rng ~size ~arity in
      let b1 = Bitrel.of_relation ~size r1
      and b2 = Bitrel.of_relation ~size r2 in
      let same rel bit = Relation.equal rel (Bitrel.to_relation bit) in
      same (Relation.union r1 r2) (Bitrel.union b1 b2)
      && same (Relation.inter r1 r2) (Bitrel.inter b1 b2)
      && same (Relation.diff r1 r2) (Bitrel.diff b1 b2)
      && Bitrel.popcount (Bitrel.complement b1)
         = Bitrel.length b1 - Relation.cardinal r1
      && Bitrel.equal (Bitrel.complement (Bitrel.complement b1)) b1)

let test_bitrel_slab_project () =
  (* set_slab fills exactly the cylinder; project is the quantifier *)
  let n = 4 in
  let b = Bitrel.create ~size:n ~arity:3 in
  ignore (Bitrel.set_slab b [ (1, 2) ]);
  let expect = ref 0 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      for z = 0 to n - 1 do
        let inb = Bitrel.mem b [| x; y; z |] in
        check tb "slab membership" (y = 2) inb;
        if inb then incr expect
      done
    done
  done;
  check ti "slab popcount" !expect (Bitrel.popcount b);
  (* ex z: projects the last coordinate out *)
  let ex = Bitrel.create ~size:n ~arity:2 in
  Bitrel.project `Or ~block:n ~src:b ~dst:ex ~word_lo:0
    ~word_hi:(Bitrel.word_count ex);
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      check tb "exists" (y = 2) (Bitrel.mem ex [| x; y |])
    done
  done;
  (* all z: the slab constrains y only, so forall z holds on y = 2 *)
  let all = Bitrel.create ~size:n ~arity:2 in
  Bitrel.project `And ~block:n ~src:b ~dst:all ~word_lo:0
    ~word_hi:(Bitrel.word_count all);
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      check tb "forall" (y = 2) (Bitrel.mem all [| x; y |])
    done
  done

let test_bitrel_zero_arity () =
  let t = Bitrel.create ~size:5 ~arity:0 in
  check tb "empty boolean" false (Bitrel.mem t [||]);
  ignore (Bitrel.set_slab t []);
  check tb "set boolean" true (Bitrel.mem t [||]);
  let f = Bitrel.full ~size:5 ~arity:0 in
  check tb "full boolean" true (Bitrel.equal t f);
  check ti "one bit" 1 (Bitrel.length t);
  (* the set-bit iterator sees exactly the one code of the one-bit space *)
  let codes = ref [] in
  Bitrel.iter_codes (fun c -> codes := c :: !codes) t;
  check tb "iter_codes on nullary" true (!codes = [ 0 ]);
  Bitrel.remove t [||];
  codes := [];
  Bitrel.iter_codes (fun c -> codes := c :: !codes) t;
  check tb "iter_codes on cleared nullary" true (!codes = [])

let test_bulk_zero_arity () =
  (* nullary definitions (parity's b) evaluate to a 0-ary relation that
     is either the empty set or the singleton [||] *)
  let v = Vocab.make ~rels:[ ("M", 1); ("b", 0) ] ~consts:[] in
  let st = ref (Structure.create ~size:5 v) in
  st := Structure.add_tuple !st "M" [| 3 |];
  List.iter
    (fun src ->
      let f = Parser.parse src in
      let seq = Eval.define !st ~vars:[] f in
      let bulk = Bulk_eval.define !st ~vars:[] f in
      check tb (src ^ " bulk == tuple (nullary)") true
        (Relation.equal seq bulk))
    [ "b()"; "~b()"; "ex x (M(x))"; "b() | all x (~M(x))" ];
  st := Structure.add_tuple !st "b" [||];
  let f = Parser.parse "b() & ex x (M(x))" in
  check tb "nullary true" true
    (Relation.mem (Bulk_eval.define !st ~vars:[] f) [||])

(* --- random-formula equivalence ------------------------------------------ *)

(* formulas over vocab <E^2, U^1, s, t> with terms drawn from the scope,
   the constants, numeric literals (in and out of range), min and max.
   Quantifiers draw names from a small pool, so shadowing of both outer
   quantifiers and the define vars is generated. *)
let random_formula rng ~size scope0 =
  let var_pool = [| "x"; "y"; "z"; "u"; "v" |] in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let term scope =
    match Random.State.int rng 8 with
    | 0 | 1 | 2 ->
        if scope = [] then Formula.Min
        else Formula.Var (List.nth scope (Random.State.int rng (List.length scope)))
    | 3 -> Formula.Var (pick [| "s"; "t" |])
    | 4 -> Formula.Num (Random.State.int rng (size + 3) - 1)
    | 5 -> Formula.Min
    | _ -> Formula.Max
  in
  let rec go depth scope =
    if depth = 0 then
      match Random.State.int rng 7 with
      | 0 -> Formula.Rel ("E", [ term scope; term scope ])
      | 1 -> Formula.Rel ("U", [ term scope ])
      | 2 -> Formula.Eq (term scope, term scope)
      | 3 -> Formula.Le (term scope, term scope)
      | 4 -> Formula.Lt (term scope, term scope)
      | 5 -> Formula.Bit (term scope, term scope)
      | _ -> if Random.State.bool rng then Formula.True else Formula.False
    else
      match Random.State.int rng 8 with
      | 0 -> Formula.Not (go (depth - 1) scope)
      | 1 -> Formula.And (go (depth - 1) scope, go (depth - 1) scope)
      | 2 -> Formula.Or (go (depth - 1) scope, go (depth - 1) scope)
      | 3 -> Formula.Implies (go (depth - 1) scope, go (depth - 1) scope)
      | 4 -> Formula.Iff (go (depth - 1) scope, go (depth - 1) scope)
      | 5 | 6 ->
          let k = 1 + Random.State.int rng 2 in
          let vs = List.init k (fun _ -> pick var_pool) in
          let body = go (depth - 1) (vs @ scope) in
          if Random.State.bool rng then Formula.Exists (vs, body)
          else Formula.Forall (vs, body)
      | _ -> go 0 scope
  in
  go (1 + Random.State.int rng 3) scope0

let random_structure rng ~size =
  let v = Vocab.make ~rels:[ ("E", 2); ("U", 1) ] ~consts:[ "s"; "t" ] in
  let st = ref (Structure.create ~size v) in
  for _ = 1 to Random.State.int rng (2 * size * size) do
    st :=
      Structure.add_tuple !st "E"
        [| Random.State.int rng size; Random.State.int rng size |]
  done;
  for _ = 1 to Random.State.int rng size do
    st := Structure.add_tuple !st "U" [| Random.State.int rng size |]
  done;
  st := Structure.with_const !st "s" (Random.State.int rng size);
  st := Structure.with_const !st "t" (Random.State.int rng size);
  !st

let bulk_matches_eval =
  QCheck.Test.make ~name:"Bulk_eval.define == Eval.define (random formulas)"
    ~count:400
    QCheck.(pair (int_range 1 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size |] in
      let st = random_structure rng ~size in
      let vars = [ "x"; "y" ] in
      let f = random_formula rng ~size vars in
      let seq = Eval.define st ~vars f in
      let bulk = Bulk_eval.define st ~vars f in
      if not (Relation.equal seq bulk) then
        QCheck.Test.fail_reportf "divergence at n=%d on %s@.tuple: %a@.bulk: %a"
          size (Formula.to_string f) Relation.pp seq Relation.pp bulk;
      true)

let bulk_holds_matches =
  QCheck.Test.make ~name:"Bulk_eval.holds == Eval.holds (random sentences)"
    ~count:300
    QCheck.(pair (int_range 1 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 7 |] in
      let st = random_structure rng ~size in
      let f = random_formula rng ~size [] in
      Eval.holds st f = Bulk_eval.holds st f)

let bulk_matches_eval_env =
  QCheck.Test.make ~name:"bulk == tuple with update-parameter env"
    ~count:200
    QCheck.(pair (int_range 2 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 13 |] in
      let st = random_structure rng ~size in
      (* a and b play the role of the update's tuple parameters *)
      let env =
        [ ("a", Random.State.int rng size); ("b", Random.State.int rng size) ]
      in
      let f = random_formula rng ~size [ "x"; "y"; "a"; "b" ] in
      let vars = [ "x"; "y" ] in
      Relation.equal (Eval.define st ~vars ~env f)
        (Bulk_eval.define st ~vars ~env f))

let test_bulk_error_parity () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let st = Structure.create ~size:3 v in
  Alcotest.check_raises "unbound variable"
    (Eval.Unbound_variable "w")
    (fun () -> ignore (Bulk_eval.define st ~vars:[ "x" ] (Formula.rel_v "E" [ "x"; "w" ])));
  check tb "unknown relation" true
    (match Bulk_eval.define st ~vars:[ "x" ] (Formula.rel_v "F" [ "x"; "x" ]) with
    | exception Eval.Unknown_relation _ -> true
    | _ -> false);
  check tb "arity error" true
    (match Bulk_eval.define st ~vars:[ "x" ] (Formula.rel_v "E" [ "x" ]) with
    | exception Eval.Arity_error _ -> true
    | _ -> false)

(* --- the registry in lockstep on both backends --------------------------- *)

(* sizes 1..12 per program, clamped so the n^(k+rank) scope space of the
   widest rule stays testable — the same exponent the static analyzer
   computes (pad/k-edge programs hit n^8, which at n=12 would be 430M
   bits per node) *)
let sweep_sizes (e : Registry.entry) =
  let m = Dynfo_analysis.Metrics.of_program e.program in
  let exp =
    List.fold_left
      (fun acc (fm : Dynfo_analysis.Metrics.formula_metrics) ->
        max acc fm.work_exponent)
      m.max_work_exponent (m.rules @ m.queries)
  in
  List.filter
    (fun n -> float_of_int n ** float_of_int exp <= 500_000.)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_registry_lockstep () =
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun size ->
          let rng = Random.State.make [| 2027; size |] in
          let reqs = e.workload rng ~size ~length:15 in
          let seq = ref (Runner.init e.program ~size) in
          let bulk = ref (Runner.init e.program ~size) in
          List.iteri
            (fun i r ->
              seq := Runner.step !seq r;
              bulk := Runner.step ~backend:`Bulk !bulk r;
              if
                not
                  (Structure.equal (Runner.structure !seq)
                     (Runner.structure !bulk))
              then
                Alcotest.failf "%s n=%d: structures diverge after request %d"
                  e.name size i;
              if Runner.query !seq <> Runner.query ~backend:`Bulk !bulk then
                Alcotest.failf "%s n=%d: query diverges after request %d"
                  e.name size i)
            reqs)
        (sweep_sizes e))
    Registry.all

(* --- the pool-parallel bulk path ----------------------------------------- *)

let test_par_bulk_define_matches () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let rng = Random.State.make [| 77 |] in
  Pool.with_pool ~lanes:4 (fun pool ->
      List.iter
        (fun size ->
          let st = ref (Structure.create ~size v) in
          for _ = 1 to 2 * size do
            let a = Random.State.int rng size
            and b = Random.State.int rng size in
            st := Structure.add_tuple !st "E" [| a; b |]
          done;
          List.iter
            (fun (vars, src) ->
              let f = Parser.parse src in
              let seq = Eval.define !st ~vars f in
              let bulk = Bulk_eval.define !st ~vars f in
              let par = Par_bulk.define pool ~cutoff:0 !st ~vars f in
              check tb (src ^ " bulk == tuple") true (Relation.equal seq bulk);
              check tb (src ^ " par-bulk == bulk") true
                (Relation.equal bulk par))
            [
              ([ "x" ], "ex y (E(x, y))");
              ([ "x"; "y" ], "E(x, y) | E(y, x)");
              ([ "x"; "y" ], "ex z (E(x, z) & E(z, y) & x != y)");
              ([ "x"; "y"; "z" ], "E(x, y) & y <= z & ~E(z, s)");
              ([ "x"; "y" ], "all z (E(z, z) -> ex u (E(u, x) & u <= y))");
            ])
        [ 3; 7; 11 ])

let test_registry_par_bulk_agreement () =
  List.iter
    (fun lanes ->
      Pool.with_pool ~lanes (fun pool ->
          List.iter
            (fun name ->
              let e = Registry.find name in
              let size = min e.default_size 8 in
              let impls =
                Dyn.of_program e.program
                :: Dyn.of_program ~backend:`Bulk e.program
                :: Par_runner.dyn pool ~cutoff:0 ~backend:`Bulk e.program
                :: Option.to_list e.static
              in
              let rng = Random.State.make [| 2028; lanes |] in
              let reqs = e.workload rng ~size ~length:25 in
              match Harness.compare_all ~size impls reqs with
              | Harness.Ok _ -> ()
              | m ->
                  Alcotest.failf "%s at %d lanes: %s" name lanes
                    (Format.asprintf "%a" Harness.pp_outcome m))
            [ "parity"; "reach_u"; "reach_acyclic"; "matching"; "mult" ]))
    [ 1; 2; 4 ]

let test_bulk_work_is_counted () =
  (* the bulk backend charges words to the same counter both backends
     report through; a non-trivial update must charge something *)
  let e = Registry.find "reach_u" in
  let s = Runner.init e.program ~size:6 in
  let _, w =
    Runner.step_work ~backend:`Bulk s (Request.ins "E" [ 0; 1 ])
  in
  check tb "bulk work > 0" true (w > 0)

let () =
  Alcotest.run "bulk"
    [
      ( "bitrel",
        [
          QCheck_alcotest.to_alcotest bitrel_roundtrip;
          QCheck_alcotest.to_alcotest bitrel_kernels;
          Alcotest.test_case "slab fill and projection" `Quick
            test_bitrel_slab_project;
          Alcotest.test_case "zero-arity booleans" `Quick
            test_bitrel_zero_arity;
        ] );
      ( "bulk_eval",
        [
          QCheck_alcotest.to_alcotest bulk_matches_eval;
          QCheck_alcotest.to_alcotest bulk_holds_matches;
          QCheck_alcotest.to_alcotest bulk_matches_eval_env;
          Alcotest.test_case "error parity with Eval" `Quick
            test_bulk_error_parity;
          Alcotest.test_case "zero-arity definitions" `Quick
            test_bulk_zero_arity;
          Alcotest.test_case "bulk work is counted" `Quick
            test_bulk_work_is_counted;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all programs in lockstep, sizes 1-12" `Slow
            test_registry_lockstep;
        ] );
      ( "par_bulk",
        [
          Alcotest.test_case "define == bulk == tuple" `Quick
            test_par_bulk_define_matches;
          Alcotest.test_case "registry via harness at 1/2/4 lanes" `Slow
            test_registry_par_bulk_agreement;
        ] );
    ]
