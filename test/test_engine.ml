(* The parallel engine (lib/engine): the domain pool itself, parallel
   Eval.define against the sequential one, and the full registry swept
   through the harness with the parallel runner at 1, 2 and 4 lanes
   against the sequential runner and the static oracles. Parallel paths
   are forced with ~cutoff:0 so small test universes exercise them. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
open Dynfo_engine

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- the pool ----------------------------------------------------------- *)

let test_pool_parallel_for () =
  Pool.with_pool ~lanes:4 (fun pool ->
      List.iter
        (fun (lo, hi, chunk) ->
          let hits = Array.make (max 1 hi) 0 in
          Pool.parallel_for pool ?chunk ~lo ~hi (fun ~lane:_ l r ->
              for i = l to r - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          for i = 0 to Array.length hits - 1 do
            let want = if i >= lo && i < hi then 1 else 0 in
            check ti (Printf.sprintf "index %d covered once" i) want hits.(i)
          done)
        [ (0, 1000, None); (3, 17, Some 1); (0, 5, Some 100); (7, 7, None) ])

let test_pool_run_all_lanes () =
  Pool.with_pool ~lanes:3 (fun pool ->
      check ti "3 lanes" 3 (Pool.lanes pool);
      let seen = Array.make 3 0 in
      Pool.run pool (fun lane -> seen.(lane) <- seen.(lane) + 1);
      Array.iteri
        (fun i c -> check ti (Printf.sprintf "lane %d ran once" i) 1 c)
        seen)

exception Boom

let test_pool_exception_propagates () =
  Pool.with_pool ~lanes:4 (fun pool ->
      check tb "raises" true
        (match
           Pool.parallel_for pool ~chunk:1 ~lo:0 ~hi:64 (fun ~lane:_ l _ ->
               if l = 13 then raise Boom)
         with
        | () -> false
        | exception Boom -> true);
      (* the pool survives a failed job *)
      let total = Atomic.make 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun ~lane:_ l r ->
          for i = l to r - 1 do
            ignore (Atomic.fetch_and_add total i)
          done);
      check ti "usable after exception" 4950 (Atomic.get total))

(* --- Par_eval.define vs Eval.define ------------------------------------- *)

let test_par_define_matches () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let rng = Random.State.make [| 99 |] in
  Pool.with_pool ~lanes:4 (fun pool ->
      List.iter
        (fun size ->
          let st = ref (Structure.create ~size v) in
          for _ = 1 to 2 * size do
            let a = Random.State.int rng size
            and b = Random.State.int rng size in
            st := Structure.add_tuple !st "E" [| a; b |]
          done;
          List.iter
            (fun (vars, src) ->
              let f = Parser.parse src in
              let seq, wseq =
                Eval.with_work (fun () -> Eval.define !st ~vars f)
              in
              let par, wpar =
                Eval.with_work (fun () ->
                    Par_eval.define pool ~cutoff:0 !st ~vars f)
              in
              check tb (src ^ " same relation") true (Relation.equal seq par);
              check ti (src ^ " same FO work") wseq wpar)
            [
              ([ "x" ], "ex y (E(x, y))");
              ([ "x"; "y" ], "E(x, y) | E(y, x)");
              ([ "x"; "y" ], "ex z (E(x, z) & E(z, y) & x != y)");
              ([ "x"; "y"; "z" ], "E(x, y) & y <= z & ~E(z, s)");
            ])
        [ 3; 7; 11 ])

(* --- the registry under the parallel runner ------------------------------ *)

let sweep_sizes (e : Registry.entry) = min e.default_size 8

let test_registry_parallel_agreement () =
  List.iter
    (fun lanes ->
      Pool.with_pool ~lanes (fun pool ->
          List.iter
            (fun (e : Registry.entry) ->
              let size = sweep_sizes e in
              let impls =
                Dyn.of_program e.program
                :: Par_runner.dyn pool ~cutoff:0 e.program
                :: Option.to_list e.static
              in
              let rng = Random.State.make [| 2026; lanes |] in
              let reqs = e.workload rng ~size ~length:25 in
              match Harness.compare_all ~size impls reqs with
              | Harness.Ok _ -> ()
              | m ->
                  Alcotest.failf "%s at %d lanes: %s" e.name lanes
                    (Format.asprintf "%a" Harness.pp_outcome m))
            Registry.all))
    [ 1; 2; 4 ]

let test_noop_requests () =
  (* inserting a present tuple / deleting an absent one must leave the
     parallel runner in agreement too (the programs are written to be
     no-ops there, and the engine must not disturb that) *)
  let e = Registry.find "reach_u" in
  let reqs =
    [
      Request.set "s" 0; Request.set "t" 3;
      Request.ins "E" [ 0; 1 ]; Request.ins "E" [ 0; 1 ];
      (* duplicate insert *)
      Request.del "E" [ 2; 3 ];
      (* absent delete *)
      Request.ins "E" [ 1; 3 ]; Request.del "E" [ 0; 1 ];
      Request.del "E" [ 0; 1 ];
      (* delete again *)
      Request.ins "E" [ 0; 3 ];
    ]
  in
  Pool.with_pool ~lanes:4 (fun pool ->
      let impls =
        [
          Dyn.of_program e.program; Par_runner.dyn pool ~cutoff:0 e.program;
        ]
        @ Option.to_list e.static
      in
      match Harness.compare_all ~size:5 impls reqs with
      | Harness.Ok n -> check ti "all checkpoints" (List.length reqs) n
      | m ->
          Alcotest.failf "no-op divergence: %s"
            (Format.asprintf "%a" Harness.pp_outcome m))

let test_step_work_matches_sequential () =
  (* the engine partitions the same enumeration, so per-request FO work
     is identical to the sequential runner's *)
  List.iter
    (fun name ->
      let e = Registry.find name in
      let size = sweep_sizes e in
      let rng = Random.State.make [| 4; 2 |] in
      let reqs = e.workload rng ~size ~length:12 in
      Pool.with_pool ~lanes:4 (fun pool ->
          let seq = ref (Runner.init e.program ~size) in
          let par = ref (Par_runner.init pool ~cutoff:0 e.program ~size) in
          List.iteri
            (fun i r ->
              let s', ws = Runner.step_work !seq r in
              let p', wp = Par_runner.step_work !par r in
              seq := s';
              par := p';
              check ti
                (Printf.sprintf "%s request %d work" name i)
                ws wp)
            reqs))
    [ "parity"; "reach_u"; "mult" ]

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers exactly" `Quick
            test_pool_parallel_for;
          Alcotest.test_case "run reaches every lane" `Quick
            test_pool_run_all_lanes;
          Alcotest.test_case "exceptions propagate, pool survives" `Quick
            test_pool_exception_propagates;
        ] );
      ( "par_eval",
        [
          Alcotest.test_case "define == sequential define" `Quick
            test_par_define_matches;
        ] );
      ( "par_runner",
        [
          Alcotest.test_case "registry sweep at 1/2/4 lanes" `Slow
            test_registry_parallel_agreement;
          Alcotest.test_case "no-op requests" `Quick test_noop_requests;
          Alcotest.test_case "work counts match sequential" `Quick
            test_step_work_matches_sequential;
        ] );
    ]
