(* The incremental delta backend (lib/logic/delta_eval, lib/analysis/
   support; lib/engine/par_delta): QCheck laws for symmetric_diff and
   dirty-frontier soundness, random framed rules evaluated on all three
   backends, error parity, nullary rules, the whole registry stepped in
   lockstep under `Delta with the advisor-installed planner, and the
   pool-parallel frontier path at 1/2/4 lanes.

   The frontier-soundness property is the backend's one-directional
   soundness obligation: supports may overapproximate freely because the
   full body is re-tested on every frontier tuple, but every tuple that
   actually changes value MUST lie inside the computed frontier (or the
   step must have widened to a full recompute). *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
open Dynfo_engine

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- Relation.symmetric_diff --------------------------------------------- *)

let random_relation rng ~size ~arity =
  let count = Random.State.int rng (size * size * 2) in
  let tuples =
    List.init count (fun _ ->
        Array.init arity (fun _ -> Random.State.int rng size))
  in
  Relation.of_list ~arity tuples

let symdiff_matches_reference =
  QCheck.Test.make
    ~name:"symmetric_diff == membership-xor reference" ~count:300
    QCheck.(triple (int_range 1 6) (int_range 0 3) (int_range 0 1000000))
    (fun (size, arity, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = random_relation rng ~size ~arity in
      let b = random_relation rng ~size ~arity in
      let d = Relation.symmetric_diff a b in
      (* reference: a tuple is in the symmetric difference iff its
         memberships differ; candidates beyond a ∪ b are never in it *)
      let expected = ref 0 in
      let see t =
        let want = Relation.mem a t <> Relation.mem b t in
        if want then incr expected;
        if Relation.mem d t <> want then
          QCheck.Test.fail_reportf "wrong membership for %s"
            (Tuple.to_string t)
      in
      Relation.iter see a;
      (* tuples in both relations are seen twice; count via d instead *)
      Relation.iter (fun t -> if not (Relation.mem a t) then see t) b;
      Relation.iter
        (fun t ->
          if not (Relation.mem a t || Relation.mem b t) then
            QCheck.Test.fail_reportf "phantom tuple %s" (Tuple.to_string t))
        d;
      true)

let symdiff_laws =
  QCheck.Test.make ~name:"symmetric_diff laws" ~count:200
    QCheck.(triple (int_range 1 5) (int_range 0 3) (int_range 0 1000000))
    (fun (size, arity, seed) ->
      let rng = Random.State.make [| seed; 3 |] in
      let a = random_relation rng ~size ~arity in
      let b = random_relation rng ~size ~arity in
      Relation.equal (Relation.symmetric_diff a b)
        (Relation.symmetric_diff b a)
      && Relation.cardinal (Relation.symmetric_diff a a) = 0
      && Relation.equal (Relation.symmetric_diff a (Relation.of_list ~arity []))
           a)

(* --- random framed rules: frontier soundness and 3-backend agreement ----- *)

(* bodies in frame shape (R(x,y) ∧ A) ∨ C over vocab <E^2, U^1, R^2, s, t>
   with update parameters a, b in the env; A and C draw quantifiers from
   a pool overlapping the tuple vars, so shadowing is exercised. This is
   the shape Support.find_frame recognizes — exactly what the planner
   sees on real update rules. *)
let random_formula rng ~size scope0 =
  let var_pool = [| "x"; "y"; "z"; "u" |] in
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let term scope =
    match Random.State.int rng 8 with
    | 0 | 1 | 2 ->
        if scope = [] then Formula.Min
        else
          Formula.Var (List.nth scope (Random.State.int rng (List.length scope)))
    | 3 -> Formula.Var (pick [| "s"; "t"; "a"; "b" |])
    | 4 -> Formula.Num (Random.State.int rng (size + 2) - 1)
    | 5 -> Formula.Min
    | _ -> Formula.Max
  in
  let rec go depth scope =
    if depth = 0 then
      match Random.State.int rng 8 with
      | 0 -> Formula.Rel ("E", [ term scope; term scope ])
      | 1 -> Formula.Rel ("U", [ term scope ])
      | 2 -> Formula.Rel ("R", [ term scope; term scope ])
      | 3 -> Formula.Eq (term scope, term scope)
      | 4 -> Formula.Le (term scope, term scope)
      | 5 -> Formula.Lt (term scope, term scope)
      | _ -> if Random.State.bool rng then Formula.True else Formula.False
    else
      match Random.State.int rng 8 with
      | 0 -> Formula.Not (go (depth - 1) scope)
      | 1 -> Formula.And (go (depth - 1) scope, go (depth - 1) scope)
      | 2 -> Formula.Or (go (depth - 1) scope, go (depth - 1) scope)
      | 3 -> Formula.Implies (go (depth - 1) scope, go (depth - 1) scope)
      | 4 -> Formula.Iff (go (depth - 1) scope, go (depth - 1) scope)
      | 5 | 6 ->
          let k = 1 + Random.State.int rng 2 in
          let vs = List.init k (fun _ -> pick var_pool) in
          let body = go (depth - 1) (vs @ scope) in
          if Random.State.bool rng then Formula.Exists (vs, body)
          else Formula.Forall (vs, body)
      | _ -> go 0 scope
  in
  go (1 + Random.State.int rng 2) scope0

let random_structure rng ~size =
  let v =
    Vocab.make ~rels:[ ("E", 2); ("U", 1); ("R", 2) ] ~consts:[ "s"; "t" ]
  in
  let st = ref (Structure.create ~size v) in
  for _ = 1 to Random.State.int rng (2 * size * size) do
    st :=
      Structure.add_tuple !st "E"
        [| Random.State.int rng size; Random.State.int rng size |]
  done;
  for _ = 1 to Random.State.int rng size do
    st := Structure.add_tuple !st "U" [| Random.State.int rng size |]
  done;
  for _ = 1 to Random.State.int rng (size * size) do
    st :=
      Structure.add_tuple !st "R"
        [| Random.State.int rng size; Random.State.int rng size |]
  done;
  st := Structure.with_const !st "s" (Random.State.int rng size);
  st := Structure.with_const !st "t" (Random.State.int rng size);
  !st

let random_framed_rule rng ~size =
  let vars = [ "x"; "y" ] in
  let scope = vars @ [ "a"; "b" ] in
  let a = random_formula rng ~size scope in
  let c = random_formula rng ~size scope in
  let body =
    Formula.Or
      ( Formula.And
          (Formula.Rel ("R", [ Formula.Var "x"; Formula.Var "y" ]), a),
        c )
  in
  ({ Program.target = "R"; vars; body } : Program.rule)

let frontier_sound =
  QCheck.Test.make
    ~name:"every flipped tuple lies in the frontier (or `Full)" ~count:400
    QCheck.(pair (int_range 2 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 5 |] in
      let st = random_structure rng ~size in
      let env =
        [ ("a", Random.State.int rng size); ("b", Random.State.int rng size) ]
      in
      let rule = random_framed_rule rng ~size in
      let plan = Dynfo_analysis.Support.plan_rule rule in
      if plan.Delta_eval.rp_frame = None then
        QCheck.Test.fail_reportf "frame not found for %s"
          (Formula.to_string rule.body);
      let base = Structure.rel st "R" in
      let full = Eval.define st ~vars:rule.vars ~env rule.body in
      (match Delta_eval.frontier st ~env ~base plan with
      | `Full -> ()
      | `Tuples tups ->
          Relation.iter
            (fun t ->
              if not (List.exists (fun u -> Tuple.compare u t = 0) tups) then
                QCheck.Test.fail_reportf
                  "flipped tuple %s outside fast-path frontier for %s"
                  (Tuple.to_string t)
                  (Formula.to_string rule.body))
            (Relation.symmetric_diff base full)
      | `Mask mask ->
          Relation.iter
            (fun t ->
              if not (Bitrel.mem mask t) then
                QCheck.Test.fail_reportf
                  "flipped tuple %s outside frontier for %s"
                  (Tuple.to_string t)
                  (Formula.to_string rule.body))
            (Relation.symmetric_diff base full)
      | `Mask_words _ ->
          (* the stateless reference never maintains a persistent mask *)
          QCheck.Test.fail_reportf "stateless frontier returned `Mask_words");
      true)

let delta_matches_eval_and_bulk =
  QCheck.Test.make
    ~name:"Delta_eval.define == Eval.define == Bulk_eval.define"
    ~count:400
    QCheck.(pair (int_range 2 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 11 |] in
      let st = random_structure rng ~size in
      let env =
        [ ("a", Random.State.int rng size); ("b", Random.State.int rng size) ]
      in
      let rule = random_framed_rule rng ~size in
      let plan = Dynfo_analysis.Support.plan_rule rule in
      let seq = Eval.define st ~vars:rule.vars ~env rule.body in
      let bulk = Bulk_eval.define st ~vars:rule.vars ~env rule.body in
      let fallback = if Random.State.bool rng then `Tuple else `Bulk in
      let delta = Delta_eval.define ~fallback st ~env plan in
      if not (Relation.equal seq delta && Relation.equal seq bulk) then
        QCheck.Test.fail_reportf "divergence at n=%d on %s@.tuple: %a@.delta: %a"
          size
          (Formula.to_string rule.body)
          Relation.pp seq Relation.pp delta;
      true)

let delta_cutoff_zero_matches =
  (* cutoff 0 widens every step to `Full: the fallback path must still
     agree (and restores that --delta-cutoff is behaviour-preserving) *)
  QCheck.Test.make ~name:"cutoff 0.0 (always fall back) still agrees"
    ~count:100
    QCheck.(pair (int_range 2 5) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 17 |] in
      let st = random_structure rng ~size in
      let env = [ ("a", Random.State.int rng size); ("b", 0) ] in
      let rule = random_framed_rule rng ~size in
      let plan = Dynfo_analysis.Support.plan_rule rule in
      let seq = Eval.define st ~vars:rule.vars ~env rule.body in
      Delta_eval.set_cutoff 0.0;
      let delta =
        Fun.protect
          ~finally:(fun () ->
            Delta_eval.set_cutoff Delta_eval.default_cutoff)
          (fun () -> Delta_eval.define ~fallback:`Tuple st ~env plan)
      in
      Relation.equal seq delta)

(* --- error parity and edge cases ----------------------------------------- *)

let plan_of ~target ~vars body =
  Dynfo_analysis.Support.plan_rule { Program.target; vars; body }

let test_delta_error_parity () =
  (* delta compiles the full body before looking at the frontier, so the
     compile-time errors of the tuple backend surface identically even
     when the dirty frontier would be empty *)
  let v = Vocab.make ~rels:[ ("E", 2); ("R", 1) ] ~consts:[] in
  let st = Structure.create ~size:3 v in
  let framed c =
    Formula.Or (Formula.And (Formula.rel_v "R" [ "x" ], Formula.True), c)
  in
  Alcotest.check_raises "unbound variable" (Eval.Unbound_variable "w")
    (fun () ->
      ignore
        (Delta_eval.define st
           (plan_of ~target:"R" ~vars:[ "x" ]
              (framed (Formula.rel_v "E" [ "x"; "w" ])))));
  check tb "unknown relation" true
    (match
       Delta_eval.define st
         (plan_of ~target:"R" ~vars:[ "x" ]
            (framed (Formula.rel_v "F" [ "x" ])))
     with
    | exception Eval.Unknown_relation _ -> true
    | _ -> false);
  check tb "arity error" true
    (match
       Delta_eval.define st
         (plan_of ~target:"R" ~vars:[ "x" ]
            (framed (Formula.rel_v "E" [ "x" ])))
     with
    | exception Eval.Arity_error _ -> true
    | _ -> false)

let test_delta_zero_arity () =
  (* nullary rules (parity's b) have a one-bit tuple space; the frame
     machinery must handle arity 0 on both the frontier and splice *)
  let v = Vocab.make ~rels:[ ("M", 1); ("b", 0) ] ~consts:[] in
  let st = ref (Structure.create ~size:5 v) in
  st := Structure.add_tuple !st "M" [| 2 |];
  st := Structure.add_tuple !st "b" [||];
  let body =
    (* b' = (b ∧ M(0)) ∨ ¬M(2): frame with A = M(0), C = ¬M(2) *)
    Formula.Or
      ( Formula.And
          (Formula.Rel ("b", []), Formula.Rel ("M", [ Formula.Num 0 ])),
        Formula.Not (Formula.Rel ("M", [ Formula.Num 2 ])) )
  in
  let plan = plan_of ~target:"b" ~vars:[] body in
  check tb "nullary rule framed" true (plan.Delta_eval.rp_frame <> None);
  let seq = Eval.define !st ~vars:[] body in
  let delta = Delta_eval.define !st plan in
  check tb "nullary delta == tuple (true state)" true
    (Relation.equal seq delta);
  st := Structure.with_rel !st "b" (Relation.of_list ~arity:0 []);
  check tb "nullary delta == tuple (false state)" true
    (Relation.equal (Eval.define !st ~vars:[] body) (Delta_eval.define !st plan))

let test_unframed_plan_falls_back () =
  (* a body whose disjuncts never carry the target atom gets no frame;
     define must silently recompute in full on the fallback backend *)
  let v = Vocab.make ~rels:[ ("E", 2); ("R", 2) ] ~consts:[] in
  let st = ref (Structure.create ~size:4 v) in
  st := Structure.add_tuple !st "E" [| 1; 2 |];
  let body = Formula.rel_v "E" [ "y"; "x" ] in
  let plan = plan_of ~target:"R" ~vars:[ "x"; "y" ] body in
  check tb "no frame" true (plan.Delta_eval.rp_frame = None);
  List.iter
    (fun fallback ->
      check tb "fallback agrees" true
        (Relation.equal
           (Eval.define !st ~vars:[ "x"; "y" ] body)
           (Delta_eval.define ~fallback !st plan)))
    [ `Tuple; `Bulk ]

(* --- the registry in lockstep on all three backends ----------------------- *)

let sweep_sizes (e : Registry.entry) =
  let m = Dynfo_analysis.Metrics.of_program e.program in
  let exp =
    List.fold_left
      (fun acc (fm : Dynfo_analysis.Metrics.formula_metrics) ->
        max acc fm.work_exponent)
      m.max_work_exponent (m.rules @ m.queries)
  in
  List.filter
    (fun n -> float_of_int n ** float_of_int exp <= 500_000.)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_registry_lockstep () =
  (* the advisor's planner drives the delta backend exactly as the CLI
     does; the conservative default would make this test vacuous *)
  Dynfo_analysis.Advisor.install ();
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun size ->
          let rng = Random.State.make [| 2029; size |] in
          let reqs = e.workload rng ~size ~length:15 in
          let seq = ref (Runner.init e.program ~size) in
          let bulk = ref (Runner.init e.program ~size) in
          let delta = ref (Runner.init e.program ~size) in
          List.iteri
            (fun i r ->
              seq := Runner.step !seq r;
              bulk := Runner.step ~backend:`Bulk !bulk r;
              delta := Runner.step ~backend:`Delta !delta r;
              if
                not
                  (Structure.equal (Runner.structure !seq)
                     (Runner.structure !delta))
              then
                Alcotest.failf
                  "%s n=%d: delta structure diverges after request %d" e.name
                  size i;
              if
                not
                  (Structure.equal (Runner.structure !seq)
                     (Runner.structure !bulk))
              then
                Alcotest.failf
                  "%s n=%d: bulk structure diverges after request %d" e.name
                  size i;
              if Runner.query !seq <> Runner.query ~backend:`Delta !delta then
                Alcotest.failf "%s n=%d: query diverges after request %d"
                  e.name size i)
            reqs)
        (sweep_sizes e))
    Registry.all

let test_registry_work_not_worse () =
  (* the headline property behind E22: on the showcase programs the
     delta backend's measured work is strictly below the tuple
     backend's on the same workload *)
  Dynfo_analysis.Advisor.install ();
  List.iter
    (fun name ->
      let e = Registry.find name in
      let size = e.default_size in
      let rng = Random.State.make [| 2030 |] in
      let reqs = e.workload rng ~size ~length:60 in
      let total backend =
        let _, works =
          Runner.run_work ~backend (Runner.init e.program ~size) reqs
        in
        List.fold_left ( + ) 0 works
      in
      let t = total `Tuple and d = total `Delta in
      if d >= t then
        Alcotest.failf "%s: delta work %d >= tuple work %d" name d t)
    [ "parity"; "matching"; "reach_acyclic"; "lca" ]

(* --- the pool-parallel frontier path -------------------------------------- *)

let test_par_delta_define_matches () =
  Dynfo_analysis.Advisor.install ();
  let rng = Random.State.make [| 99 |] in
  Pool.with_pool ~lanes:4 (fun pool ->
      List.iter
        (fun size ->
          for _ = 1 to 40 do
            let st = random_structure rng ~size in
            let env =
              [
                ("a", Random.State.int rng size);
                ("b", Random.State.int rng size);
              ]
            in
            let rule = random_framed_rule rng ~size in
            let plan = Dynfo_analysis.Support.plan_rule rule in
            let seq = Eval.define st ~vars:rule.vars ~env rule.body in
            List.iter
              (fun fallback ->
                (* cutoff 0 forces the chunked path whenever the mask is
                   non-empty and lanes > 1 *)
                let par =
                  Par_delta.define pool ~cutoff:0 st ~env ~fallback plan
                in
                if not (Relation.equal seq par) then
                  Alcotest.failf "par-delta diverges at n=%d on %s" size
                    (Formula.to_string rule.body))
              [ `Tuple; `Bulk ]
          done)
        [ 3; 5; 7 ])

let test_registry_par_delta_agreement () =
  Dynfo_analysis.Advisor.install ();
  List.iter
    (fun lanes ->
      Pool.with_pool ~lanes (fun pool ->
          List.iter
            (fun name ->
              let e = Registry.find name in
              let size = min e.default_size 8 in
              let impls =
                Dyn.of_program e.program
                :: Dyn.of_program ~backend:`Delta e.program
                :: Par_runner.dyn pool ~cutoff:0 ~backend:`Delta e.program
                :: Option.to_list e.static
              in
              let rng = Random.State.make [| 2031; lanes |] in
              let reqs = e.workload rng ~size ~length:25 in
              match Harness.compare_all ~size impls reqs with
              | Harness.Ok _ -> ()
              | m ->
                  Alcotest.failf "%s at %d lanes: %s" name lanes
                    (Format.asprintf "%a" Harness.pp_outcome m))
            [ "parity"; "reach_u"; "reach_acyclic"; "matching"; "mult" ]))
    [ 1; 2; 4 ]

(* --- persistent frontier state (E25) --------------------------------------- *)

(* Canonical form of a frontier: [None] for `Full, otherwise the sorted
   set of its tuples. [`Mask_words] borrows the persistent buffer, so
   callers materialise inside [with_state]'s callback. *)
let frontier_tuples ~size ~arity (fr : Delta_eval.frontier) =
  match fr with
  | `Full -> None
  | `Tuples tups -> Some (List.sort_uniq Tuple.compare tups)
  | `Mask m ->
      let acc = ref [] in
      Bitrel.iter_codes (fun c -> acc := Tuple.decode ~size ~arity c :: !acc) m;
      Some (List.sort_uniq Tuple.compare !acc)
  | `Mask_words (m, ws) ->
      let acc = ref [] in
      List.iter
        (fun w ->
          Bitrel.iter_codes_between
            (fun c -> acc := Tuple.decode ~size ~arity c :: !acc)
            m ~word_lo:w ~word_hi:(w + 1))
        ws;
      Some (List.sort_uniq Tuple.compare !acc)

(* The central law of the persistent-state rewrite: after ANY history of
   churn, budget collapses and target updates, the warm stateful
   frontier is the same set (and the same `Full decision) as a frontier
   built from scratch by the stateless reference. *)
let stateful_frontier_matches_stateless =
  QCheck.Test.make
    ~name:"warm frontier_state == stateless frontier under churn" ~count:120
    QCheck.(pair (int_range 2 6) (int_range 0 10000000))
    (fun (size, seed) ->
      let rng = Random.State.make [| seed; size; 23 |] in
      let rule = random_framed_rule rng ~size in
      let plan = Dynfo_analysis.Support.plan_rule rule in
      Delta_eval.invalidate ();
      let st = ref (random_structure rng ~size) in
      Fun.protect
        ~finally:(fun () -> Delta_eval.set_cutoff Delta_eval.default_cutoff)
        (fun () ->
          for _step = 1 to 10 do
            (* churn every relation the supports can depend on *)
            for _ = 1 to 1 + Random.State.int rng 5 do
              let name, t =
                match Random.State.int rng 3 with
                | 0 ->
                    ( "E",
                      [| Random.State.int rng size; Random.State.int rng size |]
                    )
                | 1 -> ("U", [| Random.State.int rng size |])
                | _ ->
                    ( "R",
                      [| Random.State.int rng size; Random.State.int rng size |]
                    )
              in
              st :=
                (if Random.State.bool rng then Structure.add_tuple !st name t
                 else Structure.del_tuple !st name t)
            done;
            if Random.State.int rng 4 = 0 then
              st := Structure.with_const !st "s" (Random.State.int rng size);
            let env =
              [
                ("a", Random.State.int rng size);
                ("b", Random.State.int rng size);
              ]
            in
            (* collapse the budget on some steps: the `Full fallback
               must leave the warm state able to resync afterwards *)
            Delta_eval.set_cutoff
              (if Random.State.int rng 4 = 0 then 0.03
               else Delta_eval.default_cutoff);
            let base = Structure.rel !st "R" in
            let expect =
              frontier_tuples ~size ~arity:2
                (Delta_eval.frontier !st ~env ~base plan)
            in
            let got =
              Delta_eval.with_state !st ~env plan (fun ~test:_ ~base:_ fr ->
                  frontier_tuples ~size ~arity:2 fr)
            in
            (match (expect, got) with
            | None, None -> ()
            | Some a, Some b
              when List.length a = List.length b
                   && List.for_all2 (fun x y -> Tuple.compare x y = 0) a b ->
                ()
            | _ ->
                QCheck.Test.fail_reportf
                  "stateful frontier diverges from stateless on %s"
                  (Formula.to_string rule.body));
            (* push the rule's own output back into the target so the
               next round exercises dirty-word clears and anchor patches
               against genuine target churn *)
            st := Structure.with_rel !st "R" (Delta_eval.define !st ~env plan)
          done);
      true)

(* Budget-fallback -> resync across the whole registry, sequential and
   pool-parallel: mid-run the cutoff collapses to 0 (every framed rule
   widens to a full recompute behind the warm state's back), then
   restores — the per-plan masks and anchor caches must catch up. *)
let test_registry_cutoff_resync () =
  Dynfo_analysis.Advisor.install ();
  Fun.protect
    ~finally:(fun () -> Delta_eval.set_cutoff Delta_eval.default_cutoff)
    (fun () ->
      List.iter
        (fun lanes ->
          Pool.with_pool ~lanes (fun pool ->
              List.iter
                (fun (e : Registry.entry) ->
                  let size = min e.default_size 8 in
                  let rng = Random.State.make [| 2033; lanes |] in
                  let reqs = e.workload rng ~size ~length:24 in
                  let seq = ref (Runner.init e.program ~size) in
                  let delta = ref (Runner.init e.program ~size) in
                  let par =
                    ref
                      (Par_runner.init pool ~cutoff:0 ~backend:`Delta e.program
                         ~size)
                  in
                  List.iteri
                    (fun i r ->
                      Delta_eval.set_cutoff
                        (if i mod 6 >= 4 then 0.0
                         else Delta_eval.default_cutoff);
                      seq := Runner.step !seq r;
                      delta := Runner.step ~backend:`Delta !delta r;
                      par := Par_runner.step !par r;
                      if
                        not
                          (Structure.equal (Runner.structure !seq)
                             (Runner.structure !delta))
                      then
                        Alcotest.failf
                          "%s: delta diverges after request %d (lanes %d)"
                          e.name i lanes;
                      if
                        not
                          (Structure.equal (Runner.structure !seq)
                             (Par_runner.structure !par))
                      then
                        Alcotest.failf
                          "%s: par-delta diverges after request %d (lanes %d)"
                          e.name i lanes)
                    reqs)
                Registry.all))
        [ 1; 4 ])

(* Lifecycle boundaries drop the warm caches: planner (re-)installation —
   which is how program re-registration and advisor-driven backend
   reconfiguration reach the evaluator — and snapshot restore onto a
   live process. After the drop, two runners sharing the process-wide
   cache continue in lockstep. *)
let test_invalidation_drops_state () =
  Dynfo_analysis.Advisor.install ();
  let e = Registry.find "reach_u" in
  let size = 7 in
  let rng = Random.State.make [| 41 |] in
  let reqs = e.workload rng ~size ~length:40 in
  let prefix = List.filteri (fun i _ -> i < 20) reqs in
  let suffix = List.filteri (fun i _ -> i >= 20) reqs in
  let s = Runner.run ~backend:`Delta (Runner.init e.program ~size) prefix in
  check tb "delta run warmed the cache" true (Delta_eval.cached_states () > 0);
  Dynfo_analysis.Advisor.install ();
  check ti "planner reinstall drops cached states" 0
    (Delta_eval.cached_states ());
  let warm = List.filteri (fun i _ -> i < 5) suffix in
  let rest = List.filteri (fun i _ -> i >= 5) suffix in
  let s = Runner.run ~backend:`Delta s warm in
  check tb "cache warmed again" true (Delta_eval.cached_states () > 0);
  let restored = Runner.restore e.program (Runner.structure s) in
  check ti "restore drops cached states" 0 (Delta_eval.cached_states ());
  let sa = ref s and sb = ref restored in
  List.iter
    (fun r ->
      sa := Runner.step ~backend:`Delta !sa r;
      sb := Runner.step ~backend:`Delta !sb r;
      check tb "lockstep-continue with warm caches" true
        (Structure.equal (Runner.structure !sa) (Runner.structure !sb)))
    rest

(* Force the persistent-mask path (small_limit 0), flip the threshold
   mid-run (warm mask state must survive steps that bypass it through
   the small-frontier path), and assert the new counters actually move. *)
let test_mask_reuse_and_threshold_switch () =
  Dynfo_analysis.Advisor.install ();
  let e = Registry.find "reach_u" in
  let size = 8 in
  let rng = Random.State.make [| 43 |] in
  let reqs = e.workload rng ~size ~length:60 in
  let reuse0 = Delta_eval.mask_reuse_hits () in
  let cleared0 = Delta_eval.words_cleared () in
  let small0 = Delta_eval.small_frontier_hits () in
  Fun.protect
    ~finally:(fun () ->
      Delta_eval.set_small_limit Delta_eval.default_small_limit)
    (fun () ->
      Delta_eval.set_small_limit 0;
      let seq = ref (Runner.init e.program ~size) in
      let delta = ref (Runner.init e.program ~size) in
      List.iteri
        (fun i r ->
          Delta_eval.set_small_limit (if i mod 8 >= 6 then 64 else 0);
          seq := Runner.step !seq r;
          delta := Runner.step ~backend:`Delta !delta r;
          if
            not
              (Structure.equal (Runner.structure !seq)
                 (Runner.structure !delta))
          then
            Alcotest.failf "threshold switch: delta diverges after request %d" i)
        reqs);
  check tb "persistent mask was reused" true
    (Delta_eval.mask_reuse_hits () > reuse0);
  check tb "dirty words were cleared" true
    (Delta_eval.words_cleared () > cleared0);
  check tb "small-frontier path fired" true
    (Delta_eval.small_frontier_hits () > small0)

(* --- support analysis sanity ---------------------------------------------- *)

let test_support_reports () =
  (* the hand-derived frames of the two showcase programs; reach_u's
     forest rule chains its delta through the New temporary *)
  let module S = Dynfo_analysis.Support in
  let parity = (Registry.find "parity").program in
  let r = S.report parity in
  check tb "parity eligible" true r.S.sr_eligible;
  check ti "parity rules all framed" 4
    (List.length (List.filter (fun rr -> rr.S.rr_framed) r.S.sr_rules));
  let reach_u = (Registry.find "reach_u").program in
  let r = S.report reach_u in
  check tb "reach_u eligible" true r.S.sr_eligible;
  check tb "reach_u F-del chained via New" true
    (List.exists (fun (_, temp) -> temp = "New") r.S.sr_temp_chains)

(* --- single-tuple fast path + tester memoization --------------------------- *)

(* The mask-free frontier fast path and the (plan, size) tester memo are
   the serving layer's wall-clock win. Assert both actually fire on
   showcase workloads — and that taking them changes nothing: the delta
   run must still land on the very structure the tuple backend builds. *)
let test_fast_path_and_memo () =
  Dynfo_analysis.Advisor.install ();
  let fast0 = Delta_eval.fast_hits () in
  let hits0 = Delta_eval.memo_hits () in
  let misses0 = Delta_eval.memo_misses () in
  List.iter
    (fun (name, size, length) ->
      let e = Registry.find name in
      let rng = Random.State.make [| 11 |] in
      let reqs = e.workload rng ~size ~length in
      let s_t = Runner.run ~backend:`Tuple (Runner.init e.program ~size) reqs in
      let s_d = Runner.run ~backend:`Delta (Runner.init e.program ~size) reqs in
      check tb (name ^ ": answers agree") (Runner.query s_t) (Runner.query s_d);
      check tb
        (name ^ ": structures agree")
        true
        (Structure.equal (Runner.structure s_t) (Runner.structure s_d)))
    [ ("reach_u", 8, 80); ("parity", 32, 80) ];
  check tb "single-tuple fast path fired" true
    (Delta_eval.fast_hits () > fast0);
  check tb "compiled testers were rebound, not recompiled" true
    (Delta_eval.memo_hits () > hits0);
  (* compiles are keyed (plan, size): two programs at one size each can
     only add a handful of entries, however many steps ran *)
  check tb "bounded compiles" true (Delta_eval.memo_misses () - misses0 <= 32)

let () =
  Alcotest.run "delta"
    [
      ( "symmetric_diff",
        [
          QCheck_alcotest.to_alcotest symdiff_matches_reference;
          QCheck_alcotest.to_alcotest symdiff_laws;
        ] );
      ( "delta_eval",
        [
          QCheck_alcotest.to_alcotest frontier_sound;
          QCheck_alcotest.to_alcotest delta_matches_eval_and_bulk;
          QCheck_alcotest.to_alcotest delta_cutoff_zero_matches;
          Alcotest.test_case "error parity with Eval" `Quick
            test_delta_error_parity;
          Alcotest.test_case "zero-arity rules" `Quick test_delta_zero_arity;
          Alcotest.test_case "unframed plans fall back" `Quick
            test_unframed_plan_falls_back;
          Alcotest.test_case "fast path and tester memo fire" `Quick
            test_fast_path_and_memo;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all programs in lockstep, sizes 1-12" `Slow
            test_registry_lockstep;
          Alcotest.test_case "delta work < tuple work on showcases" `Slow
            test_registry_work_not_worse;
        ] );
      ( "par_delta",
        [
          Alcotest.test_case "define == tuple at 4 lanes" `Quick
            test_par_delta_define_matches;
          Alcotest.test_case "registry via harness at 1/2/4 lanes" `Slow
            test_registry_par_delta_agreement;
        ] );
      ( "frontier_state",
        [
          QCheck_alcotest.to_alcotest stateful_frontier_matches_stateless;
          Alcotest.test_case "budget fallback -> resync, registry x lanes"
            `Slow test_registry_cutoff_resync;
          Alcotest.test_case "lifecycle boundaries drop cached state" `Quick
            test_invalidation_drops_state;
          Alcotest.test_case "mask reuse and threshold switches" `Quick
            test_mask_reuse_and_threshold_switch;
        ] );
      ( "support",
        [ Alcotest.test_case "showcase frames" `Quick test_support_reports ] );
    ]
