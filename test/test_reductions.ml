(* Tests for Section 5: first-order interpretations, bounded expansion,
   the transfer theorem, padding and COLOR-REACH. *)

open Dynfo_logic
open Dynfo_reductions

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let rng_of seed = Random.State.make [| seed |]

(* --- Interpretations (Definition 2.2) ----------------------------------- *)

let test_apply_unary () =
  (* complement-of-edges interpretation *)
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let i =
    Interpretation.make ~k:1 ~src_vocab:v ~dst_vocab:v
      ~rel_defs:[ ("E", [ "x"; "y" ], Parser.parse "~E(x, y)") ]
      ~const_defs:[]
  in
  let st = Structure.add_tuple (Structure.create ~size:3 v) "E" [| 0; 1 |] in
  let out = Interpretation.apply i st in
  check ti "complement size" 8 (Relation.cardinal (Structure.rel out "E"));
  check tb "flipped" false (Structure.mem out "E" [| 0; 1 |])

let test_apply_binary () =
  (* k=2: universe squares; the target edge relation links <x,y> pairs
     sharing the first component *)
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "c" ] in
  let i =
    Interpretation.make ~k:2 ~src_vocab:v ~dst_vocab:v
      ~rel_defs:
        [ ("E", [ "x1"; "x2"; "y1"; "y2" ], Parser.parse "x1 = y1") ]
      ~const_defs:[ ("c", [ "c"; "c" ]) ]
  in
  let st = Structure.with_const (Structure.create ~size:3 v) "c" 2 in
  let out = Interpretation.apply i st in
  check ti "universe squared" 9 (Structure.size out);
  check ti "pair constant" ((2 * 3) + 2) (Structure.const out "c");
  check tb "same first component" true
    (Structure.mem out "E" [| Tuple.encode ~size:3 [| 1; 0 |];
                              Tuple.encode ~size:3 [| 1; 2 |] |]);
  check tb "different first component" false
    (Structure.mem out "E" [| Tuple.encode ~size:3 [| 1; 0 |];
                              Tuple.encode ~size:3 [| 2; 0 |] |])

let test_validation () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  match
    Interpretation.make ~k:1 ~src_vocab:v ~dst_vocab:v
      ~rel_defs:[ ("E", [ "x" ], Formula.True) ]
      ~const_defs:[]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong variable count accepted"

let test_compose_transitivity () =
  (* Proposition 5.2: composing two unary interpretations agrees with
     applying them in sequence *)
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let reverse =
    Interpretation.make ~k:1 ~src_vocab:v ~dst_vocab:v
      ~rel_defs:[ ("E", [ "x"; "y" ], Parser.parse "E(y, x)") ]
      ~const_defs:[]
  in
  let closure_step =
    Interpretation.make ~k:1 ~src_vocab:v ~dst_vocab:v
      ~rel_defs:
        [ ("E", [ "x"; "y" ], Parser.parse "E(x, y) | ex z (E(x, z) & E(z, y))") ]
      ~const_defs:[]
  in
  let composed = Interpretation.compose closure_step reverse in
  for seed = 1 to 20 do
    let g = Dynfo_graph.Generate.gnp (rng_of seed) ~n:5 ~p:0.3 ~directed:true in
    let st = Dynfo_graph.Graph.to_structure (Structure.create ~size:5 v) "E" g in
    let direct =
      Interpretation.apply closure_step (Interpretation.apply reverse st)
    in
    let via_compose = Interpretation.apply composed st in
    if not (Structure.equal direct via_compose) then
      Alcotest.failf "composition mismatch at seed %d" seed
  done

(* --- I_{d-u} (Example 2.1) ----------------------------------------------- *)

let reduction_correct_qcheck =
  QCheck.Test.make
    ~name:"A in REACH_d <-> I(A) in REACH_u (Example 2.1)" ~count:60
    QCheck.(pair (int_range 1 2000) (int_range 2 8))
    (fun (seed, n) ->
      let rng = rng_of seed in
      let st = ref (Structure.create ~size:n Reach_d_to_u.graph_vocab) in
      let reqs = Reach_d_to_u.workload rng ~size:n ~length:40 in
      List.for_all
        (fun r ->
          st := Expansion.apply_request !st r;
          Reach_d_to_u.correct_on !st)
        reqs)

let test_expansion_bound () =
  (* Definition 5.1: each edge request changes at most 2 undirected
     edges = 4 tuples of the symmetric image; a [set t] request also
     moves the constant and re-enables/disables edges at both old and
     new t, for 5 changes total. *)
  let bound = function
    | Dynfo.Request.Ins _ | Dynfo.Request.Del _ -> 4
    | Dynfo.Request.Set _ -> 5
    | _ -> max_int (* workloads never emit set requests here *)
  in
  for seed = 1 to 15 do
    let rng = rng_of seed in
    let st = ref (Structure.create ~size:7 Reach_d_to_u.graph_vocab) in
    let reqs = Reach_d_to_u.workload rng ~size:7 ~length:60 in
    List.iter
      (fun r ->
        let e = Expansion.expansion_of_request Reach_d_to_u.interpretation !st r in
        if e > bound r then
          Alcotest.failf "expansion %d > %d for %s (seed %d)" e (bound r)
            (Dynfo.Request.to_string r) seed;
        st := Expansion.apply_request !st r)
      reqs
  done

let test_initial_image_empty () =
  (* bfo (not just bfo+): the image of the all-empty structure has no
     tuples *)
  List.iter
    (fun n ->
      check ti
        (Printf.sprintf "initial tuples at n=%d" n)
        0
        (Expansion.initial_tuples Reach_d_to_u.interpretation n))
    [ 2; 5; 9 ]

let test_diff_requests_sound () =
  (* replaying the diff really transforms I(before) into I(after) *)
  let rng = rng_of 3 in
  let st = ref (Structure.create ~size:6 Reach_d_to_u.graph_vocab) in
  let reqs = Reach_d_to_u.workload rng ~size:6 ~length:50 in
  List.iter
    (fun r ->
      let st' = Expansion.apply_request !st r in
      let image = Interpretation.apply Reach_d_to_u.interpretation !st in
      let image' = Interpretation.apply Reach_d_to_u.interpretation st' in
      let replayed =
        List.fold_left Expansion.apply_request image
          (Expansion.diff_requests Reach_d_to_u.interpretation !st st')
      in
      if not (Structure.equal replayed image') then
        Alcotest.fail "diff replay diverged";
      st := st')
    reqs

(* --- Transfer (Proposition 5.3) ------------------------------------------ *)

let transfer_qcheck =
  QCheck.Test.make
    ~name:"REACH_d via bfo reduction + Dyn-FO REACH_u (Prop 5.3)" ~count:15
    QCheck.(pair (int_range 1 2000) (int_range 3 7))
    (fun (seed, n) ->
      let rng = rng_of seed in
      let reqs = Reach_d_to_u.workload rng ~size:n ~length:60 in
      let oracle_dyn =
        Dynfo.Dyn.static ~name:"reach_d-static"
          ~input_vocab:Reach_d_to_u.graph_vocab ~symmetric_rels:[]
          ~oracle:Reach_d_to_u.oracle
      in
      match
        Dynfo.Harness.compare_all ~size:n [ Transfer.reach_d; oracle_dyn ] reqs
      with
      | Dynfo.Harness.Ok _ -> true
      | _ -> false)

(* --- Padding (Definition 5.13) -------------------------------------------- *)

let test_pad_roundtrip () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let st =
    Structure.with_const
      (Structure.add_tuple (Structure.create ~size:4 v) "E" [| 1; 2 |])
      "s" 3
  in
  let padded = Pad.pad st in
  check tb "well padded" true (Pad.well_padded padded v);
  check tb "copy 2 = original" true (Structure.equal (Pad.copy padded 2 v) st);
  check ti "copies multiply tuples" 4
    (Relation.cardinal (Structure.rel padded "E"))

let test_pad_member () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let st = Structure.add_tuple (Structure.create ~size:3 v) "E" [| 0; 1 |] in
  let oracle s = Structure.mem s "E" [| 0; 1 |] in
  let padded = Pad.pad st in
  check tb "member" true (Pad.member ~oracle v padded);
  (* damage one copy: membership must fail via the padding condition *)
  let damaged = Structure.del_tuple padded "E" [| 1; 0; 1 |] in
  check tb "damaged copy" false (Pad.member ~oracle v damaged)

(* --- COLOR-REACH ----------------------------------------------------------- *)

let test_color_reach_semantics () =
  (* v0 free uses both; class-1 vertices follow the colour bit *)
  let cr =
    Color_reach.make
      ~edge0:[| Some 1; Some 3; None; None |]
      ~edge1:[| Some 2; Some 2; None; None |]
      ~cls:[| 0; 1; 1; 1 |] ~n_classes:2
  in
  check tb "free vertex reaches both" true
    (Color_reach.reach cr ~colors:[| false; false |] ~s:0 ~target:2);
  check tb "bit 0 edge" true
    (Color_reach.reach cr ~colors:[| false; false |] ~s:1 ~target:3);
  check tb "bit 1 edge" true
    (Color_reach.reach cr ~colors:[| false; true |] ~s:1 ~target:2);
  check tb "blocked" false
    (Color_reach.reach cr ~colors:[| false; true |] ~s:1 ~target:3);
  check tb "not deterministic" false (Color_reach.deterministic cr)

let test_color_flip_expansion () =
  (* flipping one colour bit rewires at most 2 |V_i| usable edges *)
  for seed = 1 to 20 do
    let cr = Color_reach.random (rng_of seed) ~n:8 ~n_classes:3 in
    let colors = [| false; Random.State.bool (rng_of seed); true |] in
    for i = 1 to 2 do
      let class_size =
        Array.fold_left (fun acc c -> if c = i then acc + 1 else acc) 0 cr.cls
      in
      let e = Color_reach.flip_expansion cr ~colors i in
      if e > 2 * class_size then
        Alcotest.failf "flip expansion %d > 2*%d" e class_size
    done
  done

let test_color_reach_d () =
  let cr =
    Color_reach.make
      ~edge0:[| Some 1; Some 0 |]
      ~edge1:[| None; None |]
      ~cls:[| 1; 1 |] ~n_classes:2
  in
  check tb "deterministic" true (Color_reach.deterministic cr);
  let g = Color_reach.usable cr ~colors:[| false; false |] in
  check tb "functional" true
    (List.for_all (fun v -> Dynfo_graph.Graph.out_degree g v <= 1)
       [ 0; 1 ])

let () =
  Alcotest.run "reductions"
    [
      ( "interpretation",
        [
          Alcotest.test_case "unary apply" `Quick test_apply_unary;
          Alcotest.test_case "binary apply (k=2)" `Quick test_apply_binary;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "composition (Prop 5.2)" `Quick
            test_compose_transitivity;
        ] );
      ( "bfo-I_{d-u}",
        [
          QCheck_alcotest.to_alcotest reduction_correct_qcheck;
          Alcotest.test_case "expansion bound (Def 5.1)" `Slow
            test_expansion_bound;
          Alcotest.test_case "initial image empty" `Quick
            test_initial_image_empty;
          Alcotest.test_case "diff requests are sound" `Slow
            test_diff_requests_sound;
        ] );
      ( "transfer",
        [ QCheck_alcotest.to_alcotest transfer_qcheck ] );
      ( "padding",
        [
          Alcotest.test_case "pad/copy roundtrip" `Quick test_pad_roundtrip;
          Alcotest.test_case "membership" `Quick test_pad_member;
        ] );
      ( "color-reach",
        [
          Alcotest.test_case "semantics" `Quick test_color_reach_semantics;
          Alcotest.test_case "flip expansion bound" `Quick
            test_color_flip_expansion;
          Alcotest.test_case "deterministic variant" `Quick test_color_reach_d;
        ] );
    ]
