(* Tests for the Dyn-FO framework: requests, programs, the runner's
   synchronous update semantics, workloads and the harness. *)

open Dynfo_logic
open Dynfo

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- Request ----------------------------------------------------------- *)

let test_request_parse () =
  check tb "ins" true
    (Request.parse "ins E (1,2)" = Request.ins "E" [ 1; 2 ]);
  check tb "spaces" true
    (Request.parse "  del E (0, 3) " = Request.del "E" [ 0; 3 ]);
  check tb "set" true (Request.parse "set s 4" = Request.set "s" 4);
  check tb "nullary" true (Request.parse "ins b ()" = Request.ins "b" []);
  List.iter
    (fun s ->
      match Request.parse s with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "%S should not parse" s)
    [ "frob E (1)"; "ins E 1,2"; "set s x"; "ins E (a)" ]

let test_request_roundtrip () =
  List.iter
    (fun r -> check tb (Request.to_string r) true (Request.parse (Request.to_string r) = r))
    [ Request.ins "E" [ 1; 2 ]; Request.del "M" [ 0 ]; Request.set "s" 3 ]

let test_request_valid () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  check tb "ok" true (Request.valid v ~size:4 (Request.ins "E" [ 0; 3 ]));
  check tb "bad arity" false (Request.valid v ~size:4 (Request.ins "E" [ 0 ]));
  check tb "bad range" false (Request.valid v ~size:4 (Request.ins "E" [ 0; 4 ]));
  check tb "unknown" false (Request.valid v ~size:4 (Request.ins "F" [ 0; 0 ]));
  check tb "const" true (Request.valid v ~size:4 (Request.set "s" 3));
  check tb "const range" false (Request.valid v ~size:4 (Request.set "s" 4))

(* --- Program validation ------------------------------------------------- *)

let e2 = Vocab.make ~rels:[ ("E", 2) ] ~consts:[]
let aux1 = Vocab.make ~rels:[ ("P", 2) ] ~consts:[]
let init n = Structure.create ~size:n (Vocab.union e2 aux1)

let test_program_validation () =
  let bad_free () =
    Program.make ~name:"bad" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~on_ins:
        [ ("E", Program.update ~params:[ "a"; "b" ]
             [ Program.rule_s "P" [ "x"; "y" ] "P(x, oops)" ]) ]
      ~query:Formula.True ()
  in
  (match bad_free () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unbound variable accepted");
  let bad_arity () =
    Program.make ~name:"bad" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~on_ins:
        [ ("E", Program.update ~params:[ "a" ] []) ]
      ~query:Formula.True ()
  in
  (match bad_arity () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "param count mismatch accepted");
  let bad_target () =
    Program.make ~name:"bad" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~on_ins:
        [ ("E", Program.update ~params:[ "a"; "b" ]
             [ Program.rule_s "Q" [ "x" ] "x = a" ]) ]
      ~query:Formula.True ()
  in
  match bad_target () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown target accepted"

(* --- Runner semantics --------------------------------------------------- *)

(* A program whose two rules read each other: synchronous evaluation must
   use the pre-state for both. Aux: A and B unary; on ins to M, A' := B,
   B' := A (swap). *)
let swap_program =
  let input_vocab = Vocab.make ~rels:[ ("M", 1) ] ~consts:[] in
  let aux_vocab = Vocab.make ~rels:[ ("A", 1); ("B", 1) ] ~consts:[] in
  let init n =
    let st = Structure.create ~size:n (Vocab.union input_vocab aux_vocab) in
    Structure.add_tuple st "A" [| 0 |]
  in
  Program.make ~name:"swap" ~input_vocab ~aux_vocab ~init
    ~on_ins:
      [
        ( "M",
          Program.update ~params:[ "p" ]
            [
              Program.rule_s "A" [ "x" ] "B(x)";
              Program.rule_s "B" [ "x" ] "A(x)";
            ] );
      ]
    ~query:(Parser.parse "A(min)") ()

let test_synchronous_update () =
  let s0 = Runner.init swap_program ~size:3 in
  check tb "A(0) initially" true (Runner.query s0);
  let s1 = Runner.step s0 (Request.ins "M" [ 1 ]) in
  check tb "swapped once" false (Runner.query s1);
  let s2 = Runner.step s1 (Request.ins "M" [ 2 ]) in
  check tb "swapped back" true (Runner.query s2);
  (* B must have received A's old value, not the new empty A *)
  check tb "B(0) after one swap" true
    (Structure.mem (Runner.structure s1) "B" [| 0 |])

(* temporaries see earlier temporaries, rules see all temporaries *)
let test_temp_chaining () =
  let input_vocab = Vocab.make ~rels:[ ("M", 1) ] ~consts:[] in
  let aux_vocab = Vocab.make ~rels:[ ("Out", 1) ] ~consts:[] in
  let p =
    Program.make ~name:"temps" ~input_vocab ~aux_vocab
      ~init:(fun n -> Structure.create ~size:n (Vocab.union input_vocab aux_vocab))
      ~on_ins:
        [
          ( "M",
            Program.update ~params:[ "p" ]
              ~temps:
                [
                  Program.rule_s "T1" [ "x" ] "x = p";
                  Program.rule_s "T2" [ "x" ] "T1(x) | x = min";
                ]
              [ Program.rule_s "Out" [ "x" ] "T2(x)";
                Program.rule_s "M" [ "x" ] "M(x) | x = p" ] );
        ]
      ~query:(Parser.parse "Out(min)") ()
  in
  let s = Runner.step (Runner.init p ~size:4) (Request.ins "M" [ 2 ]) in
  check tb "T2 via T1" true (Structure.mem (Runner.structure s) "Out" [| 2 |]);
  check tb "T2 min" true (Runner.query s);
  (* temporaries must not leak into the state *)
  match Structure.rel (Runner.structure s) "T1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "temporary leaked into state"

let test_default_input_maintenance () =
  (* a program with no rule for the input relation still gets it
     maintained *)
  let p =
    Program.make ~name:"noop" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~query:Formula.True ()
  in
  let s = Runner.step (Runner.init p ~size:3) (Request.ins "E" [ 0; 1 ]) in
  check tb "added" true (Structure.mem (Runner.input s) "E" [| 0; 1 |]);
  let s = Runner.step s (Request.del "E" [ 0; 1 ]) in
  check tb "removed" false (Structure.mem (Runner.input s) "E" [| 0; 1 |])

let test_invalid_request_rejected () =
  let p =
    Program.make ~name:"noop" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~query:Formula.True ()
  in
  let s = Runner.init p ~size:3 in
  (match Runner.step s (Request.ins "E" [ 0; 5 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range accepted");
  match Runner.step s (Request.ins "P" [ 0; 1 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "aux relation accepted as input request"

let test_query_named () =
  let p =
    Program.make ~name:"named" ~input_vocab:e2 ~aux_vocab:aux1 ~init
      ~queries:[ ("edge", [ "x"; "y" ], Parser.parse "E(x, y)") ]
      ~query:Formula.True ()
  in
  let s = Runner.step (Runner.init p ~size:3) (Request.ins "E" [ 1; 2 ]) in
  check tb "named true" true (Runner.query_named s "edge" [ 1; 2 ]);
  check tb "named false" false (Runner.query_named s "edge" [ 2; 1 ]);
  (match Runner.query_named s "nope" [] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown query accepted");
  match Runner.query_named s "edge" [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let test_step_work () =
  let s = Runner.init swap_program ~size:5 in
  let _, w = Runner.step_work s (Request.ins "M" [ 0 ]) in
  check tb "work counted" true (w > 0)

(* --- PARITY end to end (Example 3.2) ------------------------------------ *)

let parity_qcheck =
  QCheck.Test.make ~name:"PARITY program == oracle (Example 3.2)" ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 2 20))
    (fun (seed, size) ->
      let rng = Random.State.make [| seed |] in
      let reqs = Dynfo_programs.Parity.workload rng ~size ~length:80 in
      match
        Harness.check_program ~size ~oracle:Dynfo_programs.Parity.oracle
          Dynfo_programs.Parity.program reqs
      with
      | Harness.Ok _ -> true
      | _ -> false)

let test_parity_native () =
  let rng = Random.State.make [| 7 |] in
  let reqs = Dynfo_programs.Parity.workload rng ~size:12 ~length:200 in
  match
    Harness.compare_all ~size:12
      [
        Dyn.of_program Dynfo_programs.Parity.program;
        Dynfo_programs.Parity.native;
        Dynfo_programs.Parity.static;
      ]
      reqs
  with
  | Harness.Ok n -> check ti "all checkpoints" 200 n
  | m -> Alcotest.failf "%s" (Format.asprintf "%a" Harness.pp_outcome m)

(* --- Workload ----------------------------------------------------------- *)

let test_workload_validity () =
  let rng = Random.State.make [| 3 |] in
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let reqs =
    Workload.generate rng ~size:6 ~length:300
      (Workload.spec ~consts:[ "s" ] [ ("E", 2) ])
  in
  check ti "length" 300 (List.length reqs);
  check tb "all valid" true
    (List.for_all (Request.valid v ~size:6) reqs)

let test_workload_symmetric_no_self_loops () =
  let rng = Random.State.make [| 4 |] in
  let reqs = Workload.edge_churn rng ~size:5 ~length:200 () in
  check tb "no self loops" true
    (List.for_all
       (function
         | Request.Ins (_, t) | Request.Del (_, t) -> t.(0) <> t.(1)
         | _ -> true)
       reqs)

let test_workload_deletes_hit () =
  (* most deletes should target present tuples *)
  let rng = Random.State.make [| 5 |] in
  let reqs = Workload.edge_churn rng ~size:6 ~length:400 () in
  let live = Hashtbl.create 16 in
  let hits = ref 0 and dels = ref 0 in
  List.iter
    (function
      | Request.Ins (_, t) -> Hashtbl.replace live (Array.to_list t) ()
      | Request.Del (_, t) ->
          incr dels;
          if Hashtbl.mem live (Array.to_list t) then incr hits;
          Hashtbl.remove live (Array.to_list t)
      | _ -> ())
    reqs;
  check tb "most deletes hit" true (!dels = 0 || 2 * !hits > !dels)

(* --- Harness ----------------------------------------------------------- *)

let test_harness_detects_divergence () =
  let ok_dyn name answer =
    Dyn.of_fun ~name ~create:(fun _ -> 0)
      ~apply:(fun c _ -> c + 1)
      ~query:(fun c -> answer c)
  in
  let a = ok_dyn "always-false" (fun _ -> false) in
  let b = ok_dyn "flips-at-3" (fun c -> c >= 3) in
  match
    Harness.compare_all ~size:4 [ a; b ]
      (List.init 5 (fun _ -> Request.ins "E" [ 0; 1 ]))
  with
  | Harness.Mismatch m -> check ti "diverged at third request" 2 m.at
  | Harness.Ok _ -> Alcotest.fail "divergence missed"

let () =
  Alcotest.run "core"
    [
      ( "request",
        [
          Alcotest.test_case "parse" `Quick test_request_parse;
          Alcotest.test_case "roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "validity" `Quick test_request_valid;
        ] );
      ( "program",
        [ Alcotest.test_case "validation" `Quick test_program_validation ] );
      ( "runner",
        [
          Alcotest.test_case "synchronous rules" `Quick test_synchronous_update;
          Alcotest.test_case "temporary chaining" `Quick test_temp_chaining;
          Alcotest.test_case "default input maintenance" `Quick
            test_default_input_maintenance;
          Alcotest.test_case "invalid requests rejected" `Quick
            test_invalid_request_rejected;
          Alcotest.test_case "named queries" `Quick test_query_named;
          Alcotest.test_case "work accounting" `Quick test_step_work;
        ] );
      ( "parity",
        [
          QCheck_alcotest.to_alcotest parity_qcheck;
          Alcotest.test_case "three-way agreement" `Quick test_parity_native;
        ] );
      ( "workload",
        [
          Alcotest.test_case "validity" `Quick test_workload_validity;
          Alcotest.test_case "no self loops" `Quick
            test_workload_symmetric_no_self_loops;
          Alcotest.test_case "deletes hit live tuples" `Quick
            test_workload_deletes_hit;
        ] );
      ( "harness",
        [
          Alcotest.test_case "detects divergence" `Quick
            test_harness_detects_divergence;
        ] );
    ]
