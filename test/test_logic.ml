(* Tests for the FO substrate: tuples, relations, structures, formulas,
   parser, evaluator. *)

open Dynfo_logic

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

(* --- Tuple ------------------------------------------------------------ *)

let test_tuple_encode_decode () =
  let t = [| 3; 0; 7 |] in
  let code = Tuple.encode ~size:8 t in
  check ti "code" ((3 * 64) + 0 + 7) code;
  check tb "roundtrip" true
    (Tuple.equal t (Tuple.decode ~size:8 ~arity:3 code))

let test_tuple_encode_range () =
  Alcotest.check_raises "out of range" (Invalid_argument
    "Tuple.encode: component out of range") (fun () ->
      ignore (Tuple.encode ~size:4 [| 4 |]))

let test_tuple_order () =
  check tb "lex" true (Tuple.compare [| 1; 2 |] [| 1; 3 |] < 0);
  check tb "shorter first" true (Tuple.compare [| 9 |] [| 0; 0 |] < 0);
  check tb "equal" true (Tuple.compare [| 2; 2 |] [| 2; 2 |] = 0)

let test_tuple_hash () =
  let t1 = [| 3; 0; 7 |] and t2 = [| 3; 0; 7 |] in
  check ti "equal tuples hash equal" (Tuple.hash t1) (Tuple.hash t2);
  check tb "non-negative" true (Tuple.hash t1 >= 0);
  check tb "non-negative (empty)" true (Tuple.hash [||] >= 0);
  (* length is mixed in: a prefix must not collide with its extension *)
  check tb "prefix distinct" true (Tuple.hash [| 0 |] <> Tuple.hash [| 0; 0 |])

let tuple_hash_qcheck =
  QCheck.Test.make ~name:"tuple hash respects equality and sign" ~count:500
    QCheck.(list_of_size Gen.(0 -- 5) (int_range 0 1000))
    (fun comps ->
      let t = Array.of_list comps in
      Tuple.hash t >= 0 && Tuple.hash t = Tuple.hash (Array.copy t))

let tuple_qcheck =
  QCheck.Test.make ~name:"tuple encode/decode roundtrip" ~count:200
    QCheck.(pair (int_range 2 9) (list_of_size Gen.(1 -- 4) (int_range 0 8)))
    (fun (size, comps) ->
      QCheck.assume (List.for_all (fun c -> c < size) comps);
      let t = Array.of_list comps in
      let code = Tuple.encode ~size t in
      Tuple.equal t (Tuple.decode ~size ~arity:(Array.length t) code))

(* --- Relation ----------------------------------------------------------- *)

let test_relation_basics () =
  let r = Relation.empty ~arity:2 in
  let r = Relation.add r [| 1; 2 |] in
  let r = Relation.add r [| 1; 2 |] in
  check ti "idempotent add" 1 (Relation.cardinal r);
  let r = Relation.remove r [| 1; 2 |] in
  check tb "removed" true (Relation.is_empty r);
  Alcotest.check_raises "arity" (Invalid_argument
    "Relation: tuple arity 1, relation arity 2") (fun () ->
      ignore (Relation.mem r [| 1 |]))

let test_relation_algebra () =
  let mk l = Relation.of_list ~arity:1 (List.map (fun x -> [| x |]) l) in
  let a = mk [ 1; 2; 3 ] and b = mk [ 2; 3; 4 ] in
  check ti "union" 4 (Relation.cardinal (Relation.union a b));
  check ti "inter" 2 (Relation.cardinal (Relation.inter a b));
  check ti "diff" 1 (Relation.cardinal (Relation.diff a b));
  check tb "subset" true (Relation.subset (Relation.inter a b) a)

let test_relation_symmetric () =
  let r = Relation.of_list ~arity:2 [ [| 0; 1 |]; [| 2; 3 |] ] in
  let s = Relation.symmetric_closure r in
  check ti "doubled" 4 (Relation.cardinal s);
  check tb "flipped present" true (Relation.mem s [| 1; 0 |])

let relation_qcheck =
  QCheck.Test.make ~name:"relation union is commutative and idempotent"
    ~count:200
    QCheck.(
      pair
        (list (pair (int_range 0 5) (int_range 0 5)))
        (list (pair (int_range 0 5) (int_range 0 5))))
    (fun (xs, ys) ->
      let mk l = Relation.of_list ~arity:2 (List.map (fun (a, b) -> [| a; b |]) l) in
      let a = mk xs and b = mk ys in
      Relation.equal (Relation.union a b) (Relation.union b a)
      && Relation.equal (Relation.union a a) a)

(* --- Vocab / Structure -------------------------------------------------- *)

let test_vocab () =
  let v = Vocab.make ~rels:[ ("E", 2); ("F", 2) ] ~consts:[ "s" ] in
  check tb "rel" true (Vocab.mem_rel v "E");
  check tb "const" true (Vocab.mem_const v "s");
  check ti "arity" 2 (Vocab.arity_of v "F");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Vocab.make: duplicate symbol \"E\"") (fun () ->
      ignore (Vocab.make ~rels:[ ("E", 1); ("E", 2) ] ~consts:[]))

let test_vocab_unknown_symbol () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  check tb "arity_opt known" true (Vocab.arity_opt v "E" = Some 2);
  check tb "arity_opt unknown" true (Vocab.arity_opt v "G" = None);
  Alcotest.check_raises "descriptive unknown-symbol error"
    (Vocab.Unknown_symbol
       "unknown relation symbol \"G\" in vocabulary <E^2, s>") (fun () ->
      ignore (Vocab.arity_of v "G"))

let test_vocab_union () =
  let a = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let b = Vocab.make ~rels:[ ("F", 2); ("E", 2) ] ~consts:[ "t" ] in
  let u = Vocab.union a b in
  check ti "rels merged" 2 (List.length (Vocab.relations u));
  Alcotest.check_raises "conflicting arity"
    (Invalid_argument "Vocab.union: \"E\" redeclared with another arity")
    (fun () ->
      ignore (Vocab.union a (Vocab.make ~rels:[ ("E", 3) ] ~consts:[])))

let test_structure () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let st = Structure.create ~size:4 v in
  check ti "default const" 0 (Structure.const st "s");
  let st = Structure.add_tuple st "E" [| 1; 2 |] in
  check tb "mem" true (Structure.mem st "E" [| 1; 2 |]);
  let st = Structure.with_const st "s" 3 in
  check ti "const" 3 (Structure.const st "s");
  Alcotest.check_raises "const range"
    (Invalid_argument "Structure.with_const: value outside universe")
    (fun () -> ignore (Structure.with_const st "s" 4));
  Alcotest.check_raises "tuple range"
    (Invalid_argument "Structure: tuple component outside universe")
    (fun () -> ignore (Structure.add_tuple st "E" [| 0; 9 |]))

let test_structure_restrict () =
  let v = Vocab.make ~rels:[ ("E", 2); ("F", 2) ] ~consts:[] in
  let st = Structure.add_tuple (Structure.create ~size:3 v) "F" [| 0; 1 |] in
  let sub = Structure.restrict st (Vocab.make ~rels:[ ("E", 2) ] ~consts:[]) in
  Alcotest.check_raises "F gone" (Invalid_argument
    "Structure.rel: unknown relation \"F\"") (fun () ->
      ignore (Structure.rel sub "F"))

(* --- Formula ------------------------------------------------------------ *)

let test_free_vars () =
  let f = Parser.parse "E(x, y) & all y (E(y, z) -> x = y)" in
  Alcotest.(check (list string)) "free vars" [ "x"; "y"; "z" ]
    (Formula.free_vars f)

let test_qdepth_size () =
  let f = Parser.parse "ex u v (E(u, v) & all z (E(z, u)))" in
  check ti "depth" 3 (Formula.quantifier_depth f);
  check tb "size positive" true (Formula.size f > 3)

let test_quantifier_rank () =
  let r src = Formula.quantifier_rank (Parser.parse src) in
  check ti "qf" 0 (r "E(x, y) & x = y");
  check ti "one block of two" 2 (r "ex u v (E(u, v))");
  check ti "nested" 3 (r "ex u v (E(u, v) & all z (E(z, u)))");
  check ti "max of branches" 2
    (r "ex u (E(u, u)) & ex v (all w (E(v, w)))");
  check ti "alias" (r "ex u (all v (E(u, v)))")
    (Formula.quantifier_depth (Parser.parse "ex u (all v (E(u, v)))"))

let test_alternation_depth () =
  let a src = Formula.alternation_depth (Parser.parse src) in
  check ti "qf" 0 (a "E(x, y)");
  check ti "purely existential" 1 (a "ex u v (E(u, v))");
  check ti "adjacent same kind merge" 1 (a "ex u (E(u, u) & ex v (E(u, v)))");
  check ti "ex-all" 2 (a "ex u (all v (E(u, v)))");
  (* a negated forall is existential in the NNF: ~all v ~E = ex v E *)
  check ti "polarity-aware" 1 (a "~(all v (~E(v, v)))");
  check ti "implies flips antecedent" 1
    (a "all u (E(u, u)) -> ex v (E(v, v))")

let test_width_rel_atoms () =
  let f = Parser.parse "E(x, y) & ex z (E(z, x) | M(z))" in
  check ti "width" 3 (Formula.width f);
  Alcotest.(check (list (pair string int)))
    "atoms with argument counts"
    [ ("E", 2); ("E", 2); ("M", 1) ]
    (List.map
       (fun (n, ts) -> (n, List.length ts))
       (Formula.rel_atoms f))

(* prenex preserves quantifier rank for formulas whose quantifiers lie
   along a single branch (the common shape of update formulas); for
   sibling quantified subformulas it can only stack prefixes, i.e. grow
   the rank. *)
let test_prenex_rank_linear () =
  List.iter
    (fun src ->
      let f = Parser.parse src in
      check ti
        (Printf.sprintf "rank preserved: %s" src)
        (Formula.quantifier_rank f)
        (Formula.quantifier_rank (Transform.prenex f)))
    [
      "ex u v (E(u, v) & all z (E(z, u)))";
      "all x (E(x, x) -> ex y (E(x, y)))";
      "~(ex x (all y (E(x, y))))";
      "E(x, y) & ex z (M(z))";
      "ex x (M(x)) | E(y, y)";
    ]

let test_subst_capture () =
  (* substituting u for x under a binder of u must rename the binder *)
  let f = Parser.parse "ex u (E(x, u))" in
  let g = Formula.subst [ ("x", Formula.Var "u") ] f in
  (match g with
  | Formula.Exists ([ fresh ], Formula.Rel ("E", [ Formula.Var a; Formula.Var b ])) ->
      check tb "renamed binder" true (fresh <> "u");
      check Alcotest.string "outer var inserted" "u" a;
      check Alcotest.string "bound occurrence follows binder" fresh b
  | _ -> Alcotest.fail "unexpected shape")

let test_substitute_rel () =
  let f = Parser.parse "P(x, y) & ex z (P(z, z))" in
  let g =
    Formula.substitute_rel
      [ ("P", ([ "a"; "b" ], Parser.parse "E(a, b) | E(b, a)")) ]
      f
  in
  check tb "no P left" true
    (not (String.length (Formula.to_string g) > 0
          && String.index_opt (Formula.to_string g) 'P' <> None))

let test_pp_parse_roundtrip () =
  let srcs =
    [
      "E(x, y) & x != t & all z (E(x, z) -> z = y)";
      "(b() & M(a)) | (~b() & ~M(a))";
      "ex u v (Eq(u, v) & P(x, u) & P(v, y))";
      "x <= y -> (BIT(x, y) <-> min < max)";
      "true & ~false";
    ]
  in
  List.iter
    (fun src ->
      let f = Parser.parse src in
      let f' = Parser.parse (Formula.to_string f) in
      check tb src true (Formula.equal f f'))
    srcs

(* full-grammar generator for the parser round-trip: every connective,
   every atom kind, multi-variable quantifier blocks, nonnegative
   numerals (the lexer has no '-'), keyword-free identifiers *)
let gen_formula_full =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z"; "u"; "v'" ] in
  let term =
    frequency
      [
        (4, map (fun v -> Formula.Var v) var);
        (1, return Formula.Min);
        (1, return Formula.Max);
        (1, map (fun i -> Formula.Num i) (0 -- 9));
      ]
  in
  let atom =
    oneof
      [
        return Formula.True;
        return Formula.False;
        map2 (fun a b -> Formula.Eq (a, b)) term term;
        map2 (fun a b -> Formula.Le (a, b)) term term;
        map2 (fun a b -> Formula.Lt (a, b)) term term;
        map2 (fun a b -> Formula.Bit (a, b)) term term;
        map2 (fun a b -> Formula.Rel ("E", [ a; b ])) term term;
        map (fun a -> Formula.Rel ("M", [ a ])) term;
        return (Formula.Rel ("b", []));
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      let sub = go (depth - 1) in
      frequency
        [
          (3, atom);
          (2, map2 (fun a b -> Formula.And (a, b)) sub sub);
          (2, map2 (fun a b -> Formula.Or (a, b)) sub sub);
          (2, map2 (fun a b -> Formula.Implies (a, b)) sub sub);
          (2, map2 (fun a b -> Formula.Iff (a, b)) sub sub);
          (2, map (fun a -> Formula.Not a) sub);
          ( 1,
            map2
              (fun vs a -> Formula.Exists (vs, a))
              (list_size (1 -- 2) var)
              sub );
          ( 1,
            map2
              (fun vs a -> Formula.Forall (vs, a))
              (list_size (1 -- 2) var)
              sub );
        ]
  in
  go 4

let parse_roundtrip_qcheck =
  QCheck.Test.make ~name:"Parser.parse ∘ Formula.to_string = id"
    ~count:2000
    (QCheck.make gen_formula_full ~print:Formula.to_string)
    (fun f -> Formula.equal (Parser.parse (Formula.to_string f)) f)

(* random formula generator for evaluator laws *)
let gen_formula =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let term = oneof [ map (fun v -> Formula.Var v) var;
                     return Formula.Min; return Formula.Max ] in
  let atom =
    oneof
      [
        map2 (fun a b -> Formula.Eq (a, b)) term term;
        map2 (fun a b -> Formula.Le (a, b)) term term;
        map2 (fun a b -> Formula.Rel ("E", [ a; b ])) term term;
        map (fun a -> Formula.Rel ("M", [ a ])) term;
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (2, atom);
          (2, map2 (fun a b -> Formula.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> Formula.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> Formula.Not a) (go (depth - 1)));
          (1, map2 (fun v a -> Formula.Exists ([ v ], a)) var (go (depth - 1)));
          (1, map2 (fun v a -> Formula.Forall ([ v ], a)) var (go (depth - 1)));
        ]
  in
  go 3

let random_structure rng =
  let v = Vocab.make ~rels:[ ("E", 2); ("M", 1) ] ~consts:[] in
  let n = 3 + Random.State.int rng 3 in
  let st = ref (Structure.create ~size:n v) in
  for _ = 1 to n * 2 do
    st := Structure.add_tuple !st "E"
        [| Random.State.int rng n; Random.State.int rng n |];
    st := Structure.add_tuple !st "M" [| Random.State.int rng n |]
  done;
  !st

let eval_law name ~count law =
  QCheck.Test.make ~name ~count
    (QCheck.make gen_formula ~print:(fun f -> Formula.to_string f))
    (fun f ->
      let rng = Random.State.make [| Hashtbl.hash (Formula.to_string f) |] in
      let st = random_structure rng in
      let env = [ ("x", 0); ("y", 1); ("z", 2) ] in
      law st env f)

let de_morgan =
  eval_law "eval: De Morgan" ~count:300 (fun st env f ->
      match f with
      | Formula.And (a, b) ->
          Eval.holds st ~env (Formula.Not (Formula.And (a, b)))
          = Eval.holds st ~env
              (Formula.Or (Formula.Not a, Formula.Not b))
      | _ ->
          Eval.holds st ~env (Formula.Not (Formula.Not f))
          = Eval.holds st ~env f)

let quantifier_duality =
  eval_law "eval: quantifier duality" ~count:300 (fun st env f ->
      Eval.holds st ~env (Formula.Not (Formula.Exists ([ "x" ], f)))
      = Eval.holds st ~env (Formula.Forall ([ "x" ], Formula.Not f)))

let implies_definition =
  eval_law "eval: implies = not-or" ~count:300 (fun st env f ->
      Eval.holds st ~env (Formula.Implies (f, f))
      && Eval.holds st ~env (Formula.Implies (Formula.False, f))
      && Eval.holds st ~env (Formula.Iff (f, f)))

let define_consistent =
  QCheck.Test.make ~name:"define agrees with holds" ~count:150
    (QCheck.make gen_formula ~print:Formula.to_string)
    (fun f ->
      let rng = Random.State.make [| Hashtbl.hash (Formula.to_string f) * 7 |] in
      let st = random_structure rng in
      let n = Structure.size st in
      let r = Eval.define st ~vars:[ "x"; "y"; "z" ] f in
      let ok = ref true in
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          for z = 0 to n - 1 do
            let direct =
              Eval.holds st ~env:[ ("x", x); ("y", y); ("z", z) ] f
            in
            if direct <> Relation.mem r [| x; y; z |] then ok := false
          done
        done
      done;
      !ok)

(* --- reference interpreter ------------------------------------------------ *)

(* an independent, direct implementation of the FO semantics (assoc-list
   environments, no compilation): the compiled evaluator must agree with
   it on everything *)
let rec naive_term st env : Formula.term -> int = function
  | Formula.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> Structure.const st x)
  | Formula.Num i -> i
  | Formula.Min -> 0
  | Formula.Max -> Structure.size st - 1

and naive_eval st env (f : Formula.t) =
  match f with
  | True -> true
  | False -> false
  | Rel (name, ts) ->
      Structure.mem st name
        (Array.of_list (List.map (naive_term st env) ts))
  | Eq (a, b) -> naive_term st env a = naive_term st env b
  | Le (a, b) -> naive_term st env a <= naive_term st env b
  | Lt (a, b) -> naive_term st env a < naive_term st env b
  | Bit (a, b) ->
      let x = naive_term st env a and y = naive_term st env b in
      y < Sys.int_size && (x lsr y) land 1 = 1
  | Not g -> not (naive_eval st env g)
  | And (a, b) -> naive_eval st env a && naive_eval st env b
  | Or (a, b) -> naive_eval st env a || naive_eval st env b
  | Implies (a, b) -> (not (naive_eval st env a)) || naive_eval st env b
  | Iff (a, b) -> naive_eval st env a = naive_eval st env b
  | Exists (vs, g) -> naive_quant st env vs g List.exists
  | Forall (vs, g) -> naive_quant st env vs g List.for_all

and naive_quant : 'a. Structure.t -> (string * int) list -> string list ->
    Formula.t -> (((int list -> bool) -> int list list -> bool)) -> bool =
 fun st env vs g iter ->
  let n = Structure.size st in
  let rec assignments = function
    | [] -> [ [] ]
    | _ :: rest ->
        List.concat_map
          (fun tail -> List.init n (fun v -> v :: tail))
          (assignments rest)
  in
  iter
    (fun vals -> naive_eval st (List.combine vs vals @ env) g)
    (assignments vs)

let compiled_vs_naive =
  QCheck.Test.make ~name:"compiled evaluator == reference interpreter"
    ~count:400
    (QCheck.make gen_formula ~print:(fun f -> Formula.to_string f))
    (fun f ->
      let rng = Random.State.make [| Hashtbl.hash (Formula.to_string f) + 11 |] in
      let st = random_structure rng in
      let env = [ ("x", 0); ("y", 1); ("z", 2) ] in
      Eval.holds st ~env f = naive_eval st env f)

(* --- bounded semantic equivalence ---------------------------------------- *)

let test_equiv_enumeration_counts () =
  (* one unary relation, no constants: 2^1 + 2^2 + 2^3 structures *)
  let v = Vocab.make ~rels:[ ("M", 1) ] ~consts:[] in
  check ti "structure count" (2 + 4 + 8)
    (Seq.length (Equiv.structures ~max_size:3 v))

let test_equiv_laws () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let f = Parser.parse "ex x (all y (E(x, y)))" in
  check tb "double negation" true
    (Equiv.equivalent ~max_size:3 v f (Formula.Not (Formula.Not f)));
  check tb "quantifier duality" true
    (Equiv.equivalent ~max_size:3 v
       (Parser.parse "~(ex x (E(x, x)))")
       (Parser.parse "all x (~E(x, x))"));
  check tb "genuinely different" false
    (Equiv.equivalent ~max_size:3 v
       (Parser.parse "ex x (E(x, x))")
       (Parser.parse "all x (E(x, x))"));
  match
    Equiv.counterexample ~max_size:3 v
      (Parser.parse "ex x (E(x, x))")
      (Parser.parse "all x (E(x, x))")
  with
  | Some st ->
      check tb "counterexample is real" true
        (Eval.holds st (Parser.parse "ex x (E(x, x))")
        <> Eval.holds st (Parser.parse "all x (E(x, x))"))
  | None -> Alcotest.fail "expected a counterexample"

let test_equiv_prenex () =
  (* prenex really is equivalence-preserving, exhaustively at size 3 *)
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  List.iter
    (fun src ->
      let f = Parser.parse src in
      check tb src true (Equiv.equivalent ~max_size:3 v f (Transform.prenex f)))
    [
      "ex x (E(x, x)) & all y (E(y, y))";
      "~(ex x (all y (E(x, y))))";
      "(ex x (E(x, x))) -> (ex y (E(y, y)))";
    ]

(* --- normal forms -------------------------------------------------------- *)

let test_nnf_shape () =
  let f = Parser.parse "~(E(x, y) & ex z (E(z, z) -> x = z))" in
  let g = Transform.nnf f in
  (* negations only on atoms: no Not above a connective or quantifier *)
  let rec atomic_negs_only = function
    | Formula.Not
        (Formula.Rel _ | Formula.Eq _ | Formula.Le _ | Formula.Lt _
        | Formula.Bit _ | Formula.True | Formula.False) ->
        true
    | Formula.Not _ -> false
    | Formula.True | Formula.False | Formula.Rel _ | Formula.Eq _
    | Formula.Le _ | Formula.Lt _ | Formula.Bit _ ->
        true
    | Formula.And (a, b) | Formula.Or (a, b) ->
        atomic_negs_only a && atomic_negs_only b
    | Formula.Implies _ | Formula.Iff _ -> false
    | Formula.Exists (_, a) | Formula.Forall (_, a) -> atomic_negs_only a
  in
  check tb "NNF shape" true (atomic_negs_only g)

let test_prenex_shape () =
  let f = Parser.parse "all x (E(x, x)) & ex y (~all z (E(y, z)))" in
  let p = Transform.prenex f in
  check tb "matrix quantifier-free" true
    (Transform.is_quantifier_free (Transform.matrix p));
  check ti "three quantifiers" 3 (List.length (Transform.prefix p))

let prenex_rank_monotone =
  QCheck.Test.make ~name:"prenex never lowers quantifier rank" ~count:300
    (QCheck.make gen_formula ~print:(fun f -> Formula.to_string f))
    (fun f ->
      Formula.quantifier_rank (Transform.prenex f)
      >= Formula.quantifier_rank f)

let nnf_preserves_semantics =
  QCheck.Test.make ~name:"nnf/prenex preserve semantics" ~count:300
    (QCheck.make gen_formula ~print:(fun f -> Formula.to_string f))
    (fun f ->
      let rng = Random.State.make [| Hashtbl.hash (Formula.to_string f) + 3 |] in
      let st = random_structure rng in
      let env = [ ("x", 0); ("y", 1); ("z", 2) ] in
      let reference = Eval.holds st ~env f in
      Eval.holds st ~env (Transform.nnf f) = reference
      && Eval.holds st ~env (Transform.prenex f) = reference)

(* --- evaluator corner cases -------------------------------------------- *)

let test_eval_numeric () =
  let v = Vocab.make ~rels:[] ~consts:[ "c" ] in
  let st = Structure.with_const (Structure.create ~size:8 v) "c" 5 in
  let t f = Eval.holds st (Parser.parse f) in
  check tb "min" true (t "min < max");
  check tb "max" true (t "max = 7");
  check tb "const" true (t "c = 5");
  check tb "BIT 5=101" true (t "BIT(c, 0) & ~BIT(c, 1) & BIT(c, 2)");
  check tb "le" true (t "all x (min <= x & x <= max)")

let test_eval_unbound () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let st = Structure.create ~size:3 v in
  Alcotest.check_raises "unbound" (Eval.Unbound_variable "nope") (fun () ->
      ignore (Eval.holds st (Parser.parse "E(nope, nope)")))

let test_eval_unknown_relation () =
  (* same message shape as Vocab.Unknown_symbol *)
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[ "s" ] in
  let st = Structure.create ~size:3 v in
  Alcotest.check_raises "unknown relation"
    (Eval.Unknown_relation
       "unknown relation symbol \"G\" in vocabulary <E^2, s>") (fun () ->
      ignore (Eval.holds st (Parser.parse "ex x (G(x, x))")))

let test_eval_arity_error () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let st = Structure.create ~size:3 v in
  Alcotest.check_raises "arity"
    (Eval.Arity_error "E expects 2 arguments, got 1") (fun () ->
      ignore (Eval.holds st (Parser.parse "ex x (E(x))")))

let test_eval_work_counter () =
  let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
  let st = Structure.create ~size:4 v in
  Eval.reset_work ();
  ignore (Eval.holds st (Parser.parse "all x y (~E(x, y))"));
  check tb "counted" true (Eval.work () >= 16)

let test_parser_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.failf "%S should not parse" src)
    [ "E(x,"; "x ="; "ex (P(x))"; "& x = y"; "E(x) E(y)"; "x + y" ]

let test_parser_zero_arity () =
  match Parser.parse "b()" with
  | Formula.Rel ("b", []) -> ()
  | _ -> Alcotest.fail "b() should parse as 0-ary atom"

let () =
  Alcotest.run "logic"
    [
      ( "tuple",
        [
          Alcotest.test_case "encode/decode" `Quick test_tuple_encode_decode;
          Alcotest.test_case "encode range" `Quick test_tuple_encode_range;
          Alcotest.test_case "order" `Quick test_tuple_order;
          Alcotest.test_case "hash" `Quick test_tuple_hash;
          QCheck_alcotest.to_alcotest tuple_hash_qcheck;
          QCheck_alcotest.to_alcotest tuple_qcheck;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "algebra" `Quick test_relation_algebra;
          Alcotest.test_case "symmetric closure" `Quick test_relation_symmetric;
          QCheck_alcotest.to_alcotest relation_qcheck;
        ] );
      ( "structure",
        [
          Alcotest.test_case "vocab" `Quick test_vocab;
          Alcotest.test_case "vocab unknown symbol" `Quick
            test_vocab_unknown_symbol;
          Alcotest.test_case "vocab union" `Quick test_vocab_union;
          Alcotest.test_case "structure ops" `Quick test_structure;
          Alcotest.test_case "restrict" `Quick test_structure_restrict;
        ] );
      ( "formula",
        [
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "qdepth/size" `Quick test_qdepth_size;
          Alcotest.test_case "quantifier rank" `Quick test_quantifier_rank;
          Alcotest.test_case "alternation depth" `Quick
            test_alternation_depth;
          Alcotest.test_case "width and rel_atoms" `Quick
            test_width_rel_atoms;
          Alcotest.test_case "capture-avoiding subst" `Quick test_subst_capture;
          Alcotest.test_case "substitute_rel" `Quick test_substitute_rel;
          Alcotest.test_case "pp/parse roundtrip" `Quick test_pp_parse_roundtrip;
        ] );
      ( "reference-interpreter",
        [ QCheck_alcotest.to_alcotest compiled_vs_naive ] );
      ( "equiv",
        [
          Alcotest.test_case "enumeration counts" `Quick
            test_equiv_enumeration_counts;
          Alcotest.test_case "laws and counterexamples" `Quick test_equiv_laws;
          Alcotest.test_case "prenex exhaustively" `Slow test_equiv_prenex;
        ] );
      ( "transform",
        [
          Alcotest.test_case "NNF shape" `Quick test_nnf_shape;
          Alcotest.test_case "prenex shape" `Quick test_prenex_shape;
          Alcotest.test_case "prenex preserves rank (linear)" `Quick
            test_prenex_rank_linear;
          QCheck_alcotest.to_alcotest prenex_rank_monotone;
          QCheck_alcotest.to_alcotest nnf_preserves_semantics;
        ] );
      ( "eval",
        [
          Alcotest.test_case "numeric predicates" `Quick test_eval_numeric;
          Alcotest.test_case "unbound variable" `Quick test_eval_unbound;
          Alcotest.test_case "unknown relation" `Quick
            test_eval_unknown_relation;
          Alcotest.test_case "arity error" `Quick test_eval_arity_error;
          Alcotest.test_case "work counter" `Quick test_eval_work_counter;
          QCheck_alcotest.to_alcotest de_morgan;
          QCheck_alcotest.to_alcotest quantifier_duality;
          QCheck_alcotest.to_alcotest implies_definition;
          QCheck_alcotest.to_alcotest define_consistent;
        ] );
      ( "parser",
        [
          Alcotest.test_case "reject malformed" `Quick test_parser_errors;
          Alcotest.test_case "zero-arity atom" `Quick test_parser_zero_arity;
          QCheck_alcotest.to_alcotest parse_roundtrip_qcheck;
        ] );
    ]
