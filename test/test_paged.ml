(* The paged bitset store (lib/logic/bitrel `Paged) and what rides on
   it: QCheck equivalence of every word kernel against the dense store
   over random op sequences and page-straddling spaces, the wire-format
   identity (a paged slab serializes byte-for-byte like the dense one),
   the whole registry stepped in lockstep with paged as the process
   default at 1/2/4 lanes, the muddle-through convergence and
   stale-prefix laws, page accounting, and the snapshot size
   regression — a paged-scale relation must snapshot at O(cardinality),
   never O(tuple space). *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
open Dynfo_engine

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int

let with_repr r f =
  let old = Bitrel.default_repr () in
  Bitrel.set_default_repr r;
  Fun.protect ~finally:(fun () -> Bitrel.set_default_repr old) f

let with_cutoff c f =
  Delta_eval.set_cutoff c;
  Fun.protect
    ~finally:(fun () -> Delta_eval.set_cutoff Delta_eval.default_cutoff)
    f

(* universe sizes that put the tuple space across >= 2 pages (a page is
   4032 codes) at every arity, so every kernel's page-boundary handling
   is exercised, not just its single-page fast path *)
let size_for = function
  | 0 -> 5
  | 1 -> 8191
  | 2 -> 89 (* 7921 codes *)
  | _ -> 17 (* 4913 codes *)

(* --- random kernel-op sequences, dense twin vs paged twin ---------------- *)

(* apply the same random mutation sequence to both stores *)
let rand_ops rng d p nops =
  let size = Bitrel.size d and arity = Bitrel.arity d in
  let len = Bitrel.length d in
  let wc = Bitrel.word_count d in
  for _ = 1 to nops do
    match Random.State.int rng 5 with
    | 0 ->
        let c = Random.State.int rng len in
        Bitrel.set_code d c;
        Bitrel.set_code p c
    | 1 ->
        let c = Random.State.int rng len in
        let t = Tuple.decode ~size ~arity c in
        Bitrel.remove d t;
        Bitrel.remove p t
    | 2 ->
        let a = Random.State.int rng len and b = Random.State.int rng len in
        let lo = min a b and hi = max a b in
        if hi > lo then begin
          Bitrel.fill_range d ~lo ~hi;
          Bitrel.fill_range p ~lo ~hi
        end
    | 3 when arity > 0 ->
        let coord = Random.State.int rng arity in
        let v = Random.State.int rng size in
        ignore (Bitrel.set_slab d [ (coord, v) ]);
        ignore (Bitrel.set_slab p [ (coord, v) ])
    | 4 ->
        let ws =
          List.init
            (1 + Random.State.int rng 5)
            (fun _ -> Random.State.int rng wc)
          |> List.sort_uniq compare
        in
        Bitrel.clear_words d ws;
        Bitrel.clear_words p ws
    | _ -> ()
  done

let codes_of b =
  let acc = ref [] in
  Bitrel.iter_codes (fun c -> acc := c :: !acc) b;
  List.rev !acc

let twins ~size ~arity rng nops =
  let d = Bitrel.create_repr `Dense ~size ~arity in
  let p = Bitrel.create_repr `Paged ~size ~arity in
  rand_ops rng d p nops;
  (d, p)

let paged_mutation_equiv =
  QCheck.Test.make ~name:"paged == dense over random op sequences"
    ~count:120
    QCheck.(pair (int_range 0 3) (int_range 0 1000000))
    (fun (arity, seed) ->
      let size = size_for arity in
      let rng = Random.State.make [| seed |] in
      let d, p = twins ~size ~arity rng 40 in
      let len = Bitrel.length d in
      let a = Random.State.int rng len and b = Random.State.int rng len in
      let lo = min a b and hi = max a b in
      Bitrel.equal d p
      && Bitrel.popcount d = Bitrel.popcount p
      && codes_of d = codes_of p
      && Bitrel.any_in d ~lo ~hi = Bitrel.any_in p ~lo ~hi
      && Bitrel.all_in d ~lo ~hi = Bitrel.all_in p ~lo ~hi
      (* the wire format does not know about pages *)
      && Bitrel.to_bytes d = Bitrel.to_bytes p
      && Bitrel.equal
           (Bitrel.of_bytes ~size ~arity (Bitrel.to_bytes p))
           d
      && Relation.equal (Bitrel.to_relation d) (Bitrel.to_relation p))

let paged_binop_equiv =
  QCheck.Test.make ~name:"binary kernels: paged/mixed == dense" ~count:60
    QCheck.(pair (int_range 0 3) (int_range 0 1000000))
    (fun (arity, seed) ->
      let size = size_for arity in
      let rng = Random.State.make [| seed; 1 |] in
      let d1, p1 = twins ~size ~arity rng 30 in
      let d2, p2 = twins ~size ~arity rng 30 in
      let wc = Bitrel.word_count d1 in
      let ok = ref true in
      List.iter
        (fun op ->
          let a = Random.State.int rng (wc + 1)
          and b = Random.State.int rng (wc + 1) in
          let word_lo = min a b and word_hi = max a b in
          let dd = Bitrel.create_repr `Dense ~size ~arity in
          let pp = Bitrel.create_repr `Paged ~size ~arity in
          let pm = Bitrel.create_repr `Paged ~size ~arity in
          Bitrel.blit_op op ~dst:dd d1 d2 ~word_lo ~word_hi;
          Bitrel.blit_op op ~dst:pp p1 p2 ~word_lo ~word_hi;
          Bitrel.blit_op op ~dst:pm d1 p2 ~word_lo ~word_hi;
          ok := !ok && Bitrel.equal dd pp && Bitrel.equal dd pm)
        [ `Union; `Inter; `Diff; `Implies; `Iff ];
      let a = Random.State.int rng (wc + 1)
      and b = Random.State.int rng (wc + 1) in
      let word_lo = min a b and word_hi = max a b in
      let dd = Bitrel.create_repr `Dense ~size ~arity in
      let pp = Bitrel.create_repr `Paged ~size ~arity in
      Bitrel.complement_into ~dst:dd d1 ~word_lo ~word_hi;
      Bitrel.complement_into ~dst:pp p1 ~word_lo ~word_hi;
      !ok && Bitrel.equal dd pp
      && Bitrel.equal (Bitrel.union d1 d2) (Bitrel.union p1 p2)
      && Bitrel.equal (Bitrel.inter d1 d2) (Bitrel.inter p1 p2)
      && Bitrel.equal (Bitrel.diff d1 d2) (Bitrel.diff p1 p2)
      && Bitrel.equal (Bitrel.complement d1) (Bitrel.complement p1)
      (* in-place: dst aliasing an operand, both stores *)
      &&
      (Bitrel.blit_op `Union ~dst:d1 d1 d2 ~word_lo:0 ~word_hi:wc;
       Bitrel.blit_op `Union ~dst:p1 p1 p2 ~word_lo:0 ~word_hi:wc;
       Bitrel.equal d1 p1))

let paged_project_equiv =
  QCheck.Test.make ~name:"project/lift: paged/mixed == dense" ~count:60
    QCheck.(pair (int_range 1 3) (int_range 0 1000000))
    (fun (arity, seed) ->
      let size = size_for arity in
      let rng = Random.State.make [| seed; 2 |] in
      let ds, ps = twins ~size ~arity rng 30 in
      let ok = ref true in
      (* project out the trailing coordinate: block = size *)
      let wc_dst =
        Bitrel.word_count (Bitrel.create_repr `Dense ~size ~arity:(arity - 1))
      in
      List.iter
        (fun q ->
          let mk r = Bitrel.create_repr r ~size ~arity:(arity - 1) in
          let dd = mk `Dense
          and pp = mk `Paged
          and pd = mk `Dense
          and dp = mk `Paged in
          Bitrel.project q ~block:size ~src:ds ~dst:dd ~word_lo:0
            ~word_hi:wc_dst;
          Bitrel.project q ~block:size ~src:ps ~dst:pp ~word_lo:0
            ~word_hi:wc_dst;
          Bitrel.project q ~block:size ~src:ps ~dst:pd ~word_lo:0
            ~word_hi:wc_dst;
          Bitrel.project q ~block:size ~src:ds ~dst:dp ~word_lo:0
            ~word_hi:wc_dst;
          ok :=
            !ok && Bitrel.equal dd pp && Bitrel.equal dd pd
            && Bitrel.equal dd dp;
          (* a partial, page-straddling word window *)
          let a = Random.State.int rng (wc_dst + 1)
          and b = Random.State.int rng (wc_dst + 1) in
          let word_lo = min a b and word_hi = max a b in
          let dd = mk `Dense and pp = mk `Paged in
          Bitrel.project q ~block:size ~src:ds ~dst:dd ~word_lo ~word_hi;
          Bitrel.project q ~block:size ~src:ps ~dst:pp ~word_lo ~word_hi;
          ok := !ok && Bitrel.equal dd pp)
        [ `Or; `And ];
      (* lift: tile an arity-(k-1) pattern across the arity-k space *)
      let pat_d, pat_p = twins ~size ~arity:(arity - 1) rng 20 in
      let ld = Bitrel.create_repr `Dense ~size ~arity in
      let lp = Bitrel.create_repr `Paged ~size ~arity in
      let lm = Bitrel.create_repr `Paged ~size ~arity in
      ignore (Bitrel.lift_pattern ~dst:ld ~pattern:pat_d);
      ignore (Bitrel.lift_pattern ~dst:lp ~pattern:pat_p);
      ignore (Bitrel.lift_pattern ~dst:lm ~pattern:pat_d);
      !ok && Bitrel.equal ld lp && Bitrel.equal ld lm)

(* --- the registry in lockstep with paged as the process default ---------- *)

let test_registry_paged_lockstep () =
  (* the `Delta impls need the advisor-installed support planner; the
     conservative default plan has no frames *)
  Dynfo_analysis.Advisor.install ();
  with_repr `Paged (fun () ->
      List.iter
        (fun lanes ->
          Pool.with_pool ~lanes (fun pool ->
              List.iter
                (fun name ->
                  let e = Registry.find name in
                  let size = min e.Registry.default_size 8 in
                  let impls =
                    [
                      Dyn.of_program e.program;
                      Dyn.of_program ~backend:`Bulk e.program;
                      Dyn.of_program ~backend:`Delta e.program;
                      Par_runner.dyn pool ~cutoff:0 ~backend:`Bulk e.program;
                      Par_runner.dyn pool ~cutoff:0 ~backend:`Delta
                        e.program;
                    ]
                  in
                  let rng = Random.State.make [| 3033; lanes |] in
                  let reqs = e.workload rng ~size ~length:25 in
                  match Harness.compare_all ~size impls reqs with
                  | Harness.Ok _ -> ()
                  | m ->
                      Alcotest.failf "%s at %d lanes (paged): %s" name lanes
                        (Format.asprintf "%a" Harness.pp_outcome m))
                [ "parity"; "reach_u"; "matching"; "semi_reach" ]))
        [ 1; 2; 4 ])

(* --- muddle-through ------------------------------------------------------ *)

(* cutoff 0 makes every non-trivial delta frontier blow its budget, so
   each framed singleton step spawns a background rebuild: the maximal
   muddle stress *)
let test_muddle_convergence () =
  Dynfo_analysis.Advisor.install ();
  with_cutoff 0. (fun () ->
      let e = Registry.find "semi_reach" in
      let size = 8 in
      let rng = Random.State.make [| 4242 |] in
      let reqs = e.Registry.workload rng ~size ~length:120 in
      let md = ref (Runner.enable_muddle (Runner.init e.program ~size)) in
      let seq = ref (Runner.init e.program ~size) in
      List.iter
        (fun r ->
          md := Runner.step ~backend:`Delta !md r;
          seq := Runner.step ~backend:`Delta !seq r)
        reqs;
      let final = Runner.await_muddle ~backend:`Delta !md in
      check tb "converged to sequential semantics" true
        (Structure.equal (Runner.structure final) (Runner.structure !seq));
      check tb "rebuilds actually happened" true
        (Runner.rebuild_count final > 0);
      check tb "drained" false (Runner.muddle_active final))

let test_muddle_stale_prefix () =
  Dynfo_analysis.Advisor.install ();
  with_cutoff 0. (fun () ->
      let e = Registry.find "semi_reach" in
      let size = 6 in
      let rng = Random.State.make [| 777 |] in
      let reqs = e.Registry.workload rng ~size ~length:60 in
      (* sequential prefix states: prefixes.(j) = after the first j *)
      let n = List.length reqs in
      let prefixes = Array.make (n + 1) (Runner.init e.program ~size) in
      List.iteri
        (fun i r ->
          prefixes.(i + 1) <- Runner.step ~backend:`Delta prefixes.(i) r)
        reqs;
      let md = ref (Runner.enable_muddle (Runner.init e.program ~size)) in
      List.iteri
        (fun i r ->
          md := Runner.step ~backend:`Delta !md r;
          let stale = Runner.structure !md in
          let is_prefix = ref false in
          for j = 0 to i + 1 do
            if
              (not !is_prefix)
              && Structure.equal stale (Runner.structure prefixes.(j))
            then is_prefix := true
          done;
          if not !is_prefix then
            Alcotest.failf
              "after request %d the muddled structure matches no \
               sequential prefix"
              i)
        reqs)

let test_muddle_batch_drains () =
  Dynfo_analysis.Advisor.install ();
  with_cutoff 0. (fun () ->
      let e = Registry.find "semi_reach" in
      let size = 6 in
      let rng = Random.State.make [| 99 |] in
      let reqs = e.Registry.workload rng ~size ~length:30 in
      let singles = List.filteri (fun i _ -> i < 20) reqs in
      let batch = List.filteri (fun i _ -> i >= 20) reqs in
      let fold st = List.fold_left (Runner.step ~backend:`Delta) st singles in
      let md = fold (Runner.enable_muddle (Runner.init e.program ~size)) in
      (* the batch tick must drain the in-flight rebuild first *)
      let md = Runner.step_batch ~backend:`Delta md batch in
      let md = Runner.await_muddle ~backend:`Delta md in
      let seq =
        Runner.step_batch ~backend:`Delta
          (fold (Runner.init e.program ~size))
          batch
      in
      check tb "batch on a muddling state == sequential" true
        (Structure.equal (Runner.structure md) (Runner.structure seq)))

(* --- page accounting ------------------------------------------------------ *)

let test_page_accounting () =
  let size = 89 and arity = 2 in
  Bitrel.reset_page_counters ();
  let b = Bitrel.create_repr `Paged ~size ~arity in
  check ti "fresh store holds no pages" 0 (Bitrel.pages_resident b);
  check tb "empty occupancy" true (Bitrel.occupancy b = 0.0);
  Bitrel.add b [| 0; 0 |];
  check ti "first touch allocates one page" 1 (Bitrel.pages_resident b);
  check tb "allocation counted" true (Bitrel.pages_allocated () >= 1);
  check tb "occupancy reflects residency" true
    (Bitrel.occupancy b > 0.0 && Bitrel.occupancy b <= 1.0);
  (* a kernel over an almost-empty paged operand skips absent pages *)
  Bitrel.reset_page_counters ();
  let a = Bitrel.create_repr `Paged ~size ~arity in
  let dst = Bitrel.create_repr `Paged ~size ~arity in
  Bitrel.blit_op `Inter ~dst a b ~word_lo:0 ~word_hi:(Bitrel.word_count a);
  check tb "absent pages are skipped, not walked" true
    (Bitrel.skip_hits () > 0);
  check ti "skipping allocates nothing" 0 (Bitrel.pages_allocated ());
  (* dense stores never page *)
  let d = Bitrel.create_repr `Dense ~size ~arity in
  check ti "dense: no page table" 0 (Bitrel.page_count d);
  check tb "dense occupancy is 1" true (Bitrel.occupancy d = 1.0)

(* --- snapshots ------------------------------------------------------------ *)

let test_snapshot_paged () =
  let module Snapshot = Dynfo_server.Snapshot in
  with_repr `Paged (fun () ->
      (* paged-scale: a 10^10-bit tuple space with 100 members must take
         the sparse wire arm and stay O(cardinality) — the dense slab
         would be ~1.2 GB *)
      let v = Vocab.make ~rels:[ ("E", 2) ] ~consts:[] in
      let size = 100_000 in
      let st = ref (Structure.create ~size v) in
      for i = 0 to 99 do
        st := Structure.add_tuple !st "E" [| i; (i * 7 + 13) mod size |]
      done;
      let bytes = Snapshot.encode ~program:"snap-paged" ~steps:0 !st in
      check tb "snapshot is O(cardinality), not O(space)" true
        (String.length bytes < 100 * 64 + 4096);
      let loaded = Snapshot.decode bytes in
      check tb "sparse arm round-trips" true
        (Structure.equal loaded.Snapshot.snap_structure !st);
      (* small-and-full: the dense wire arm, written from and read back
         into paged stores *)
      let v = Vocab.make ~rels:[ ("R", 2) ] ~consts:[] in
      let size = 8 in
      let st = ref (Structure.create ~size v) in
      for x = 0 to size - 1 do
        for y = 0 to size - 1 do
          if (x + y) mod 2 = 0 then
            st := Structure.add_tuple !st "R" [| x; y |]
        done
      done;
      let bytes = Snapshot.encode ~program:"snap-dense" ~steps:3 !st in
      let loaded = Snapshot.decode bytes in
      check tb "dense arm round-trips through paged stores" true
        (Structure.equal loaded.Snapshot.snap_structure !st))

let () =
  Alcotest.run "paged"
    [
      ( "kernels",
        [
          QCheck_alcotest.to_alcotest paged_mutation_equiv;
          QCheck_alcotest.to_alcotest paged_binop_equiv;
          QCheck_alcotest.to_alcotest paged_project_equiv;
          Alcotest.test_case "page accounting" `Quick test_page_accounting;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "registry at 1/2/4 lanes, paged default" `Slow
            test_registry_paged_lockstep;
        ] );
      ( "muddle",
        [
          Alcotest.test_case "convergence law" `Quick
            test_muddle_convergence;
          Alcotest.test_case "stale answers are prefix states" `Quick
            test_muddle_stale_prefix;
          Alcotest.test_case "batch drains the rebuild first" `Quick
            test_muddle_batch_drains;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "sparse wire arm at paged scale" `Quick
            test_snapshot_paged;
        ] );
    ]
