(* The serving subsystem (lib/server): JSON codec round trips (QCheck),
   wire protocol encode/decode for every op, snapshot encode/decode with
   corruption rejection, snapshot -> restore -> lockstep-continue with
   identical answers and work counts, the batch == singleton-sequence
   oracle over the whole registry on all four backends, session
   coalescing under concurrent submitters, and the daemon end-to-end
   over a real Unix socket. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
open Dynfo_server

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

(* --- JSON ------------------------------------------------------------------ *)

(* Floats from a small decimal grid so that the %.12g printing round
   trips exactly; full-precision doubles would need 17 digits. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun i -> Json.Float (float_of_int i /. 8.)) (int_range (-8000) 8000);
        map (fun s -> Json.Str s) (string_size ~gen:char (int_bound 12));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (3, scalar);
               (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun l -> Json.Obj l)
                   (list_size (int_bound 4)
                      (pair (string_size ~gen:char (int_bound 6)) (self (n / 2)))) );
             ])

let json_roundtrip =
  QCheck.Test.make ~name:"Json.parse inverts Json.to_string" ~count:500
    (QCheck.make json_gen)
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' when v' = v -> true
      | Ok v' ->
          QCheck.Test.fail_reportf "reparsed %s as %s" (Json.to_string v)
            (Json.to_string v')
      | Error msg ->
          QCheck.Test.fail_reportf "failed to reparse %s: %s"
            (Json.to_string v) msg)

let test_json_cases () =
  let ok s v =
    match Json.parse s with
    | Ok v' -> check tb (Printf.sprintf "parse %s" s) true (v = v')
    | Error msg -> Alcotest.failf "parse %s failed: %s" s msg
  in
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse %s should have failed" s
    | Error _ -> ()
  in
  ok "null" Json.Null;
  ok " [ 1 , -2 ,3.5, \"a\" ] "
    (Json.List [ Json.Int 1; Json.Int (-2); Json.Float 3.5; Json.Str "a" ]);
  ok "{\"a\":true,\"b\":{}}"
    (Json.Obj [ ("a", Json.Bool true); ("b", Json.Obj []) ]);
  ok "\"\\u0041\\n\\t\\\\\"" (Json.Str "A\n\t\\");
  (* surrogate pair and 2-byte code point decode to UTF-8 *)
  ok "\"\\u00e9\\ud83d\\ude00\"" (Json.Str "\xc3\xa9\xf0\x9f\x98\x80");
  ok "1e3" (Json.Float 1000.);
  bad "";
  bad "tru";
  bad "[1,]";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "\"\\x\"";
  bad "\"\\ud800\"";
  bad "1 2";
  bad "{\"a\" 1}";
  (* the printer never emits raw newlines: one value = one wire line *)
  check tb "no raw newline in printed string" false
    (String.contains (Json.to_string (Json.Str "a\nb\x01")) '\n')

(* --- wire ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let cmds : Wire.cmd list =
    [
      Wire.Hello;
      Wire.Create
        {
          session = None;
          program = "reach_u";
          size = 8;
          backend = `Auto;
          engine = `Seq;
          coalesce = `Commute;
        };
      Wire.Create
        {
          session = Some "mine";
          program = "parity";
          size = 16;
          backend = `Delta;
          engine = `Par;
          coalesce = `Fifo;
        };
      Wire.Attach { session = "s1" };
      Wire.Destroy { session = "s1" };
      Wire.Update
        {
          session = "s1";
          reqs = [ Request.ins "E" [ 0; 1 ]; Request.del "E" [ 2; 3 ];
                   Request.set "s" 4 ];
        };
      Wire.Query { session = "s1"; name = None; args = [] };
      Wire.Query { session = "s1"; name = Some "reach"; args = [ 0; 2 ] };
      Wire.Snapshot { session = "s1"; path = "/tmp/x.snap" };
      Wire.Restore
        {
          session = None;
          path = "/tmp/x.snap";
          backend = `Bulk;
          engine = `Seq;
          coalesce = `Commute;
        };
      Wire.Stats { session = "s1" };
      Wire.List_sessions;
      Wire.Shutdown;
    ]
  in
  List.iteri
    (fun i cmd ->
      let id = i + 1 in
      match Wire.cmd_of_line (Wire.cmd_line ~id cmd) with
      | id', Ok cmd' ->
          check ti "id" id id';
          check tb "cmd round trip" true (cmd = cmd')
      | _, Error msg -> Alcotest.failf "decode failed: %s" msg)
    cmds;
  (match Wire.cmd_of_line "{\"id\":7,\"op\":\"frobnicate\"}" with
  | 7, Error _ -> ()
  | _ -> Alcotest.fail "unknown op must decode to its id plus an error");
  (match Wire.cmd_of_line "not json" with
  | 0, Error _ -> ()
  | _ -> Alcotest.fail "garbage must fail");
  let r = Wire.ok ~id:3 [ ("applied", Json.Int 2) ] in
  (match Wire.resp_of_line (Wire.resp_line r) with
  | Ok r' -> check tb "ok resp round trip" true (r = r')
  | Error msg -> Alcotest.failf "resp decode failed: %s" msg);
  let e = Wire.error ~id:4 "boom" in
  match Wire.resp_of_line (Wire.resp_line e) with
  | Ok e' -> check tb "error resp round trip" true (e = e')
  | Error msg -> Alcotest.failf "resp decode failed: %s" msg

(* --- snapshot -------------------------------------------------------------- *)

let reach_structure ~size ~length =
  let e = Registry.find "reach_u" in
  let rng = Random.State.make [| 3 |] in
  let reqs = e.workload rng ~size ~length in
  (e, reqs, Runner.run (Runner.init e.program ~size) reqs)

let test_snapshot_roundtrip () =
  let _, _, s = reach_structure ~size:8 ~length:40 in
  let st = Runner.structure s in
  let data = Snapshot.encode ~program:"reach_u" ~steps:40 st in
  let l = Snapshot.decode data in
  check ts "program" "reach_u" l.Snapshot.snap_program;
  check ti "steps" 40 l.Snapshot.snap_steps;
  check tb "structure round trip" true
    (Structure.equal st l.Snapshot.snap_structure);
  (* dense encoding: a near-full relation must also round trip *)
  let v = Vocab.make ~rels:[ ("R", 2); ("S", 3) ] ~consts:[ "c" ] in
  let full = Structure.create ~size:16 v in
  let full = Structure.with_const full "c" 11 in
  let full =
    Structure.with_rel full "R"
      (Relation.of_list ~arity:2
         (List.concat_map
            (fun x -> List.init 16 (fun y -> [| x; y |]))
            (List.init 16 Fun.id)))
  in
  let data = Snapshot.encode ~program:"dense" ~steps:0 full in
  let l = Snapshot.decode data in
  check tb "dense structure round trip" true
    (Structure.equal full l.Snapshot.snap_structure);
  (* file round trip *)
  let path = Filename.temp_file "dynfo_test" ".snap" in
  let bytes = Snapshot.save ~path ~program:"reach_u" ~steps:7 st in
  check ti "save size" (String.length (Snapshot.encode ~program:"reach_u" ~steps:7 st)) bytes;
  let l = Snapshot.load ~path in
  check tb "file round trip" true (Structure.equal st l.Snapshot.snap_structure);
  Sys.remove path

let test_snapshot_corruption () =
  let _, _, s = reach_structure ~size:8 ~length:30 in
  let data = Snapshot.encode ~program:"reach_u" ~steps:30 (Runner.structure s) in
  let expect_corrupt what d =
    match Snapshot.decode d with
    | _ -> Alcotest.failf "%s should have been rejected" what
    | exception Snapshot.Corrupt _ -> ()
  in
  expect_corrupt "truncated file" (String.sub data 0 (String.length data - 5));
  expect_corrupt "empty file" "";
  expect_corrupt "bad magic" ("XX" ^ String.sub data 2 (String.length data - 2));
  let flip i d =
    let b = Bytes.of_string d in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  (* a flipped byte in the body breaks the checksum; in the trailing 8
     bytes it breaks it too *)
  expect_corrupt "flipped body byte" (flip (String.length data / 2) data);
  expect_corrupt "flipped checksum byte" (flip (String.length data - 1) data);
  (* a structurally valid but oversized declared length must not crash *)
  expect_corrupt "truncated mid-header" (String.sub data 0 14);
  (* restoring a snapshot against a program whose vocabulary it does not
     cover is rejected by Runner.restore *)
  let v = Vocab.make ~rels:[ ("Z", 1) ] ~consts:[] in
  let tiny = Structure.create ~size:4 v in
  let l = Snapshot.decode (Snapshot.encode ~program:"reach_u" ~steps:0 tiny) in
  match Runner.restore (Registry.find "reach_u").program l.Snapshot.snap_structure with
  | _ -> Alcotest.fail "restore with missing vocabulary should fail"
  | exception (Invalid_argument _ | Vocab.Unknown_symbol _) -> ()

(* snapshot -> restore -> continue in lockstep with the uninterrupted
   runner: identical answers AND identical per-step work counts, on all
   four backends *)
let test_snapshot_lockstep () =
  Dynfo_analysis.Advisor.install ();
  List.iter
    (fun (name, size, length) ->
      let e = Registry.find name in
      List.iter
        (fun backend ->
          let rng = Random.State.make [| 5 |] in
          let reqs = e.workload rng ~size ~length in
          let k = length / 2 in
          let prefix = List.filteri (fun i _ -> i < k) reqs in
          let suffix = List.filteri (fun i _ -> i >= k) reqs in
          let a = Runner.run ~backend (Runner.init e.program ~size) prefix in
          let data =
            Snapshot.encode ~program:name ~steps:(List.length prefix)
              (Runner.structure a)
          in
          let l = Snapshot.decode data in
          let b = Runner.restore e.program l.Snapshot.snap_structure in
          check tb
            (Printf.sprintf "%s restored structure equal" name)
            true
            (Structure.equal (Runner.structure a) (Runner.structure b));
          let sa = ref a and sb = ref b in
          List.iter
            (fun req ->
              let a', wa = Runner.step_work ~backend !sa req in
              let b', wb = Runner.step_work ~backend !sb req in
              sa := a';
              sb := b';
              check ti (Printf.sprintf "%s lockstep work" name) wa wb;
              check tb
                (Printf.sprintf "%s lockstep answer" name)
                (Runner.query !sa) (Runner.query !sb))
            suffix)
        ([ `Tuple; `Bulk; `Delta; `Auto ] : Runner.backend list))
    [ ("reach_u", 7, 40); ("parity", 20, 40); ("lca", 7, 30) ]

(* --- batch == singleton sequence (the serving layer's oracle) -------------- *)

let batch_equals_singletons =
  QCheck.Test.make
    ~name:"step_batch == singleton fold on every registry program x backend"
    ~count:8
    QCheck.(pair (int_range 0 1000000) (int_range 1 6))
    (fun (seed, chunk) ->
      Dynfo_analysis.Advisor.install ();
      List.iter
        (fun (e : Registry.entry) ->
          let size = e.default_size in
          let rng = Random.State.make [| seed |] in
          let reqs = e.workload rng ~size ~length:10 in
          let rec chunks = function
            | [] -> []
            | l ->
                let k = min chunk (List.length l) in
                List.filteri (fun i _ -> i < k) l
                :: chunks (List.filteri (fun i _ -> i >= k) l)
          in
          List.iter
            (fun backend ->
              let singles = Runner.run ~backend (Runner.init e.program ~size) reqs in
              let batched =
                List.fold_left
                  (Runner.step_batch ~backend)
                  (Runner.init e.program ~size)
                  (chunks reqs)
              in
              if
                not
                  (Structure.equal
                     (Runner.structure singles)
                     (Runner.structure batched))
              then
                QCheck.Test.fail_reportf
                  "batch mismatch: %s backend %s chunk %d seed %d" e.name
                  (match backend with
                  | `Tuple -> "tuple"
                  | `Bulk -> "bulk"
                  | `Delta -> "delta"
                  | `Auto -> "auto")
                  chunk seed)
            ([ `Tuple; `Bulk; `Delta; `Auto ] : Runner.backend list))
        Registry.all;
      true)

let test_batch_atomicity () =
  let e = Registry.find "reach_u" in
  let s = Runner.init e.program ~size:6 in
  let bad =
    [ Request.ins "E" [ 0; 1 ]; Request.ins "E" [ 0; 99 ] ]
    (* second member out of range *)
  in
  match Runner.step_batch s bad with
  | _ -> Alcotest.fail "invalid batch member must reject the batch"
  | exception Invalid_argument _ ->
      (* nothing ran: the pre-state still answers like the empty one *)
      check tb "state untouched" true
        (Structure.equal (Runner.structure s)
           (Runner.structure (Runner.init e.program ~size:6)))

let test_par_batch () =
  let e = Registry.find "reach_u" in
  let rng = Random.State.make [| 9 |] in
  let reqs = e.workload rng ~size:7 ~length:24 in
  Dynfo_engine.Pool.with_pool ~lanes:2 (fun pool ->
      let seq = Runner.run (Runner.init e.program ~size:7) reqs in
      let par =
        Dynfo_engine.Par_runner.step_batch
          (Dynfo_engine.Par_runner.init pool e.program ~size:7)
          reqs
      in
      check tb "par batch answers" (Runner.query seq)
        (Dynfo_engine.Par_runner.query par);
      check tb "par batch structures" true
        (Structure.equal (Runner.structure seq)
           (Dynfo_engine.Par_runner.structure par)))

(* --- sessions -------------------------------------------------------------- *)

(* Concurrent submitters on one session. Distinct insert-only requests
   commute, and parity's auxiliary state is a pure function of the input
   set (unlike e.g. reach_u's, which is history-dependent: different
   interleavings build different — equally valid — auxiliary relations),
   so the final structure must equal an offline replay regardless of how
   the threads' updates interleaved. Ticks never exceed steps; with
   several threads racing one worker some coalescing is likely, but
   scheduling makes that unassertable. *)
let test_session_concurrent () =
  let e = Registry.find "parity" in
  let size = 16 in
  let elems = List.init 12 Fun.id in
  let sess =
    Session.create ~id:"t" ~name:"parity" ~backend:`Delta e.program ~size
  in
  let per_thread = 3 in
  let slices =
    List.init per_thread (fun k ->
        List.filteri (fun i _ -> i mod per_thread = k) elems)
  in
  let threads =
    List.map
      (fun slice ->
        Thread.create
          (fun () ->
            List.iter
              (fun a -> ignore (Session.update sess [ Request.ins "M" [ a ] ]))
              slice)
          ())
      slices
  in
  List.iter Thread.join threads;
  let st = Session.stats sess in
  check ti "all steps applied" (List.length elems) st.Session.st_steps;
  check tb "ticks <= steps" true (st.Session.st_ticks <= st.Session.st_steps);
  let offline =
    Runner.run
      (Runner.init e.program ~size)
      (List.map (fun a -> Request.ins "M" [ a ]) elems)
  in
  check tb "concurrent result == offline replay" true
    (Structure.equal (Runner.structure offline) (Session.structure sess));
  (* invalid batches are rejected without killing the worker *)
  (match Session.update sess [ Request.ins "M" [ 99 ] ] with
  | _ -> Alcotest.fail "invalid update must raise"
  | exception Invalid_argument _ -> ());
  check tb "session still answers" (Runner.query offline)
    (Session.query sess []);
  Session.close sess;
  match Session.update sess [ Request.ins "M" [ 0 ] ] with
  | _ -> Alcotest.fail "closed session must reject"
  | exception Invalid_argument _ -> ()

(* --- commute coalescing ----------------------------------------------------- *)

(* queue-drain dedupe of identical back-to-back updates, and the batch
   law behind it: the coalesced tick must be equivalent to the
   submitted order, duplicates included *)
let test_session_dedupe () =
  Dynfo_analysis.Advisor.install ();
  Dynfo_analysis.Commute.install ();
  let e = Registry.find "parity" in
  let size = 8 in
  let batch =
    [
      Request.ins "M" [ 0 ]; Request.ins "M" [ 0 ]; Request.ins "M" [ 1 ];
      Request.ins "M" [ 1 ]; Request.del "M" [ 0 ]; Request.del "M" [ 0 ];
      Request.ins "M" [ 2 ];
    ]
  in
  let sess =
    Session.create ~id:"d" ~name:"parity" ~backend:`Tuple e.program ~size
  in
  let applied, _ = Session.update sess batch in
  check ti "whole batch acknowledged" (List.length batch) applied;
  let st = Session.stats sess in
  check ti "steps count submitted requests" (List.length batch)
    st.Session.st_steps;
  check ti "back-to-back duplicates collapsed" 3 st.Session.st_deduped;
  let offline = Runner.run (Runner.init e.program ~size) batch in
  check tb "dedupe preserves the state" true
    (Structure.equal (Runner.structure offline) (Session.structure sess));
  Session.close sess;
  (* fifo mode: the same exchange exploits no law *)
  let fifo =
    Session.create ~id:"f" ~name:"parity" ~backend:`Tuple ~coalesce:`Fifo
      e.program ~size
  in
  ignore (Session.update fifo batch);
  let st = Session.stats fifo in
  check ti "fifo dedupes nothing" 0 st.Session.st_deduped;
  check ti "fifo elides nothing" 0 st.Session.st_elided;
  check tb "fifo reaches the same state" true
    (Structure.equal (Runner.structure offline) (Session.structure fifo));
  Session.close fifo

(* two independent input relations feeding disjoint auxiliaries, with a
   named query per side: updates on one side are provably invisible to
   the other side's query, so the commute drain may let them overtake
   pending queries — under concurrent query hammering the state must
   still equal the offline replay and every query must be answered *)
let two_vocab = Vocab.make ~rels:[ ("R", 1); ("S", 1) ] ~consts:[]
let two_aux = Vocab.make ~rels:[ ("AR", 0); ("AS", 0) ] ~consts:[]

let two_sub =
  Program.make ~name:"two-sub" ~input_vocab:two_vocab ~aux_vocab:two_aux
    ~init:(fun n -> Structure.create ~size:n (Vocab.union two_vocab two_aux))
    ~on_ins:
      [
        ("R", Program.update ~params:[ "a" ] [ Program.rule_s "AR" [] "AR() | R(a)" ]);
        ("S", Program.update ~params:[ "a" ] [ Program.rule_s "AS" [] "AS() | S(a)" ]);
      ]
    ~queries:[ ("qr", [], Parser.parse "AR()"); ("qs", [], Parser.parse "AS()") ]
    ~query:(Parser.parse "AR() & AS()") ()

let test_session_mixed_traffic () =
  Dynfo_analysis.Advisor.install ();
  Dynfo_analysis.Commute.install ();
  let size = 8 in
  let sess =
    Session.create ~id:"h" ~name:"two-sub" ~backend:`Tuple two_sub ~size
  in
  let stop = Atomic.make false in
  let qthreads =
    List.map
      (fun q ->
        Thread.create
          (fun () ->
            while not (Atomic.get stop) do
              ignore (Session.query sess ~name:q []);
              Thread.yield ()
            done)
          ())
      [ "qr"; "qs" ]
  in
  let reqs =
    List.concat_map
      (fun i -> [ Request.ins "R" [ i mod size ]; Request.ins "S" [ (i + 3) mod size ] ])
      (List.init 40 Fun.id)
  in
  List.iter (fun r -> ignore (Session.update sess [ r ])) reqs;
  Atomic.set stop true;
  List.iter Thread.join qthreads;
  let offline = Runner.run (Runner.init two_sub ~size) reqs in
  check tb "mixed traffic state == offline replay" true
    (Structure.equal (Runner.structure offline) (Session.structure sess));
  check tb "settled answer" (Runner.query offline) (Session.query sess []);
  let st = Session.stats sess in
  check ti "all steps applied" (List.length reqs) st.Session.st_steps;
  check tb "hoist counter is sane" true
    (st.Session.st_hoisted >= 0 && st.Session.st_hoisted <= st.Session.st_steps);
  Session.close sess

(* --- end to end over a Unix socket ----------------------------------------- *)

let with_server f =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dynfo_test_%d.sock" (Unix.getpid ()))
  in
  let find_program name =
    match Registry.find name with
    | e -> Some e.Registry.program
    | exception Not_found -> None
  in
  let server_thread =
    Thread.create
      (fun () ->
        ignore
          (Server.run { Server.addr = `Unix sock; lanes = Some 2; find_program }))
      ()
  in
  let rec connect tries =
    match Client.connect (`Unix sock) with
    | c -> c
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
        Thread.delay 0.05;
        connect (tries - 1)
  in
  let client = connect 100 in
  Fun.protect
    ~finally:(fun () ->
      (try Client.shutdown client with Failure _ -> ());
      Client.close client;
      Thread.join server_thread)
    (fun () -> f client)

let test_daemon_end_to_end () =
  Dynfo_analysis.Advisor.install ();
  with_server (fun client ->
      let server_name, version = Client.hello client in
      check ts "server name" "dynfo" server_name;
      check ti "protocol version" Wire.version version;
      let e = Registry.find "reach_u" in
      let size = 8 in
      let rng = Random.State.make [| 21 |] in
      let reqs = e.workload rng ~size ~length:60 in
      let k = 30 in
      let prefix = List.filteri (fun i _ -> i < k) reqs in
      let suffix = List.filteri (fun i _ -> i >= k) reqs in
      let session =
        Client.create client ~backend:`Delta ~program:"reach_u" ~size ()
      in
      let applied, _work = Client.update client ~session prefix in
      check ti "applied" k applied;
      let offline_prefix = Runner.run (Runner.init e.program ~size) prefix in
      check tb "served answer after prefix" (Runner.query offline_prefix)
        (Client.query client ~session []);
      (* snapshot, restore into a second live session, continue both *)
      let path = Filename.temp_file "dynfo_e2e" ".snap" in
      let bytes = Client.snapshot client ~session ~path in
      check tb "snapshot non-empty" true (bytes > 0);
      let restored, steps = Client.restore client ~backend:`Bulk ~path () in
      check ti "restored steps" k steps;
      ignore (Client.update client ~session suffix);
      ignore (Client.update client ~session:restored suffix);
      let offline_all = Runner.run offline_prefix suffix in
      check tb "original session final answer" (Runner.query offline_all)
        (Client.query client ~session []);
      check tb "restored session final answer" (Runner.query offline_all)
        (Client.query client ~session:restored []);
      Sys.remove path;
      (* a par-engine session on the shared pool agrees too *)
      let par =
        Client.create client ~backend:`Tuple ~engine:`Par ~program:"reach_u"
          ~size ()
      in
      ignore (Client.update client ~session:par reqs);
      check tb "par session answer" (Runner.query offline_all)
        (Client.query client ~session:par []);
      (* stats and list *)
      let st = Client.stats client ~session in
      check ti "steps counted" 60 st.Client.steps;
      check tb "work counted" true (st.Client.work > 0);
      let sessions = Client.list_sessions client in
      check ti "three live sessions" 3 (List.length sessions);
      check tb "list names programs" true
        (List.for_all (fun (_, p) -> p = "reach_u") sessions);
      (* protocol-level errors: unknown session, unknown program, bad
         op, corrupt snapshot restore *)
      (match Client.query client ~session:"nope" [] with
      | _ -> Alcotest.fail "unknown session must fail"
      | exception Failure _ -> ());
      (match Client.create client ~program:"nope" ~size:4 () with
      | _ -> Alcotest.fail "unknown program must fail"
      | exception Failure _ -> ());
      let bad = Client.raw_call client "{\"id\":99,\"op\":\"nope\"}" in
      check tb "unknown op answered with ok:false" true
        (match Wire.resp_of_line bad with
        | Ok r -> (not r.Wire.r_ok) && r.Wire.r_id = 99
        | Error _ -> false);
      let corrupt_path = Filename.temp_file "dynfo_corrupt" ".snap" in
      let oc = open_out_bin corrupt_path in
      output_string oc "DYNFOSNAP1 this is not a snapshot";
      close_out oc;
      (match Client.restore client ~path:corrupt_path () with
      | _ -> Alcotest.fail "corrupt snapshot must be rejected"
      | exception Failure msg ->
          check tb "corruption named" true
            (String.length msg > 0));
      Sys.remove corrupt_path;
      Client.destroy client ~session:par;
      check ti "two sessions after destroy" 2
        (List.length (Client.list_sessions client)))

let test_loadgen () =
  Dynfo_analysis.Advisor.install ();
  with_server (fun client ->
      let e = Registry.find "parity" in
      let size = 16 in
      let rng = Random.State.make [| 2 |] in
      let reqs = e.workload rng ~size ~length:64 in
      let session = Client.create client ~program:"parity" ~size () in
      let r = Loadgen.drive client ~session ~batch:16 reqs in
      check ti "all updates applied" (List.length reqs) r.Loadgen.lg_updates;
      check ti "ceil-division calls" 4 r.Loadgen.lg_calls;
      check tb "throughput nonzero" true (r.Loadgen.lg_ups > 0.);
      check tb "latency ordered" true
        (r.Loadgen.lg_p50_us <= r.Loadgen.lg_p99_us
        && r.Loadgen.lg_p99_us <= r.Loadgen.lg_max_us);
      let offline = Runner.query (Runner.run (Runner.init e.program ~size) reqs) in
      check tb "served == offline" offline r.Loadgen.lg_final)

(* fifo and commute sessions answer identically over the wire, and the
   stats response surfaces the coalescing and delta counters *)
let test_daemon_coalesce_modes () =
  Dynfo_analysis.Advisor.install ();
  Dynfo_analysis.Commute.install ();
  with_server (fun client ->
      let e = Registry.find "parity" in
      let size = 16 in
      let rng = Random.State.make [| 8 |] in
      let base = e.workload rng ~size ~length:48 in
      (* every request submitted twice back to back: the retrying
         at-least-once submitter E24 models *)
      let reqs = List.concat_map (fun r -> [ r; r ]) base in
      let offline =
        Runner.query (Runner.run (Runner.init e.program ~size) reqs)
      in
      let run coalesce =
        let session =
          Client.create client ~coalesce ~program:"parity" ~size ()
        in
        let r = Loadgen.drive client ~session ~batch:16 reqs in
        let st = Client.stats client ~session in
        Client.destroy client ~session;
        check tb "served answer == offline replay" offline r.Loadgen.lg_final;
        check ti "steps acknowledge every submitted request"
          (List.length reqs) st.Client.steps;
        st
      in
      let fifo = run `Fifo in
      check ti "fifo exploits no law" 0 (fifo.Client.deduped + fifo.Client.elided);
      let com = run `Commute in
      check tb "commute dedupes the injected duplicates" true
        (com.Client.deduped >= 48);
      check tb "stats surface planner groups" true (com.Client.groups > 0);
      check tb "stats surface delta counters" true
        (com.Client.delta_fast_hits >= 0
        && com.Client.delta_memo_hits >= 0
        && com.Client.delta_memo_misses >= 0
        && com.Client.delta_mask_builds >= 0))

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest json_roundtrip;
          Alcotest.test_case "hand-picked cases" `Quick test_json_cases;
        ] );
      ("wire", [ Alcotest.test_case "round trips" `Quick test_wire_roundtrip ]);
      ( "snapshot",
        [
          Alcotest.test_case "encode/decode/save/load" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_snapshot_corruption;
          Alcotest.test_case "restore continues in lockstep" `Slow
            test_snapshot_lockstep;
        ] );
      ( "batch",
        [
          QCheck_alcotest.to_alcotest batch_equals_singletons;
          Alcotest.test_case "atomic rejection" `Quick test_batch_atomicity;
          Alcotest.test_case "par engine batch" `Quick test_par_batch;
        ] );
      ( "session",
        [
          Alcotest.test_case "concurrent submitters coalesce safely" `Quick
            test_session_concurrent;
          Alcotest.test_case "queue-drain dedupe batch law" `Quick
            test_session_dedupe;
          Alcotest.test_case "mixed update/query traffic" `Quick
            test_session_mixed_traffic;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end over a Unix socket" `Slow
            test_daemon_end_to_end;
          Alcotest.test_case "load generator" `Slow test_loadgen;
          Alcotest.test_case "fifo vs commute coalescing" `Slow
            test_daemon_coalesce_modes;
        ] );
    ]
