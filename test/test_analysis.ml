(* Tests for the static analyzer: the whole registry must come out clean
   (precision), and systematic corruptions of known-good programs must
   each fire exactly the expected diagnostic (soundness). Corrupted
   programs are assembled by record surgery, bypassing [Program.make]'s
   own validation — exactly the hand-assembled programs the analyzer
   exists to catch. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
module D = Dynfo_analysis.Diagnostic
module Check = Dynfo_analysis.Check
module Metrics = Dynfo_analysis.Metrics
module Report = Dynfo_analysis.Report

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

let show_diags ds = String.concat "\n" (List.map D.to_string ds)

(* assert a corruption yields exactly one diagnostic, with this severity,
   path and message *)
let expect_one ~what p severity path message =
  let ds = Check.program p in
  check ti (what ^ ": one diagnostic") 1 (List.length ds);
  let d = List.hd ds in
  check tb (what ^ ": severity") true (d.D.severity = severity);
  check ts (what ^ ": path") path d.D.path;
  check ts (what ^ ": message") message d.D.message

(* --- registry sweep: no false positives --------------------------------- *)

let test_registry_clean () =
  List.iter
    (fun (e : Registry.entry) ->
      let ds = Check.program e.program in
      check ti
        (Printf.sprintf "%s clean, got:\n%s" e.name (show_diags ds))
        0 (List.length ds))
    Registry.all

let test_registry_strict_reports () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = Report.of_program e.program in
      check tb (e.name ^ " ok strict") true (Report.ok r ~strict:true);
      check tb (e.name ^ " clean") true (Report.is_clean r))
    Registry.all

(* --- mutation helpers ---------------------------------------------------- *)

let map_update kind i f (p : Program.t) =
  let on l = List.mapi (fun j (key, u) -> if i = j then (key, f u) else (key, u)) l in
  match kind with
  | `Ins -> { p with on_ins = on p.on_ins }
  | `Del -> { p with on_del = on p.on_del }

let map_rule n f (u : Program.update) =
  { u with rules = List.mapi (fun j r -> if j = n then f r else r) u.rules }

let reach_u = (Registry.find "reach_u").program
let parity = (Registry.find "parity").program
let msf = (Registry.find "msf").program

(* --- corruption: wrong arity --------------------------------------------- *)

let test_wrong_arity () =
  (* give reach_u's F-rule a third tuple variable: F is binary *)
  let p =
    map_update `Ins 0
      (map_rule 1 (fun (r : Program.rule) ->
           { r with vars = r.vars @ [ "w" ] }))
      reach_u
  in
  expect_one ~what:"arity" p D.Error "on_ins E / rule F"
    "rule has 3 tuple variables, F has arity 2"

let test_wrong_arity_atom () =
  (* make an atom disagree with the declared arity of PV (ternary) *)
  let p =
    map_update `Ins 0
      (map_rule 0 (fun (r : Program.rule) ->
           { r with body = Formula.And (r.body, Formula.rel_v "PV" [ "x"; "y" ]) }))
      reach_u
  in
  expect_one ~what:"atom arity" p D.Error "on_ins E / rule E"
    "atom PV has 2 arguments, declared arity is 3"

(* --- corruption: unbound free variable ----------------------------------- *)

let test_unbound_variable () =
  let p =
    map_update `Ins 0
      (map_rule 0 (fun (r : Program.rule) ->
           {
             r with
             body =
               Formula.And (r.body, Formula.Eq (Formula.Var "zz", Formula.Min));
           }))
      parity
  in
  expect_one ~what:"unbound" p D.Error "on_ins M / rule M"
    "unbound free variable zz"

(* --- corruption: unknown relation ---------------------------------------- *)

let test_unknown_relation () =
  let p =
    map_update `Del 0
      (map_rule 0 (fun (r : Program.rule) ->
           { r with body = Formula.And (r.body, Formula.rel_v "NOPE" []) }))
      parity
  in
  expect_one ~what:"unknown rel" p D.Error "on_del M / rule M"
    "references unknown relation NOPE"

(* --- corruption: duplicate target in one simultaneous block -------------- *)

let test_duplicate_target () =
  let p =
    map_update `Ins 0
      (fun (u : Program.update) ->
        { u with rules = List.hd u.rules :: u.rules })
      msf
  in
  let target = (List.hd (List.assoc "E" msf.on_ins).rules).target in
  expect_one ~what:"duplicate target" p D.Error "on_ins E"
    (Printf.sprintf "simultaneous block redefines target %s" target)

(* --- corruption: temporary used before its definition --------------------- *)

let test_temp_before_definition () =
  (* reach_u's delete block defines T then New, and New's body reads T;
     swapping them is the classic use-before-definition *)
  let p =
    map_update `Del 0
      (fun (u : Program.update) -> { u with temps = List.rev u.temps })
      reach_u
  in
  expect_one ~what:"temp order" p D.Error "on_del E / temp New"
    "references temporary T before its definition"

(* --- corruption: temporary shadowing a state relation --------------------- *)

let test_temp_shadows_state () =
  let p =
    map_update `Del 0
      (fun (u : Program.update) ->
        {
          u with
          temps =
            u.temps @ [ Program.rule "F" [ "x"; "y" ] Formula.True ];
        })
      reach_u
  in
  (* two findings: the shadow itself, and the F rule now writing a temp *)
  let ds = Check.program p in
  check ti ("temp shadow: two diagnostics, got:\n" ^ show_diags ds) 2
    (List.length ds);
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 in
  check ts "shadow path" "on_del E / temp F" d1.D.path;
  check ts "shadow message" "temporary F shadows a state relation"
    d1.D.message;
  check ts "knock-on path" "on_del E / rule F" d2.D.path;
  check ts "knock-on message"
    "rule targets temporary F (temporaries are discarded after the update)"
    d2.D.message

(* --- corruption: rule targeting a temporary ------------------------------- *)

let test_rule_targets_temp () =
  let p =
    map_update `Del 0
      (map_rule 0 (fun (r : Program.rule) -> { r with target = "T" }))
      reach_u
  in
  let ds = Check.program p in
  check tb
    ("targets temp, got:\n" ^ show_diags ds)
    true
    (List.exists
       (fun d ->
         d.D.path = "on_del E / rule T"
         && d.D.message
            = "rule targets temporary T (temporaries are discarded after \
               the update)")
       ds)

(* --- corruption: query with a free non-constant variable ------------------- *)

let test_query_not_sentence () =
  let p = { reach_u with query = Parser.parse "PV(s, t, q)" } in
  expect_one ~what:"query sentence" p D.Error "query"
    "not a sentence: free variable q"

(* --- hazard warning: rule writing another input relation ------------------- *)

let hazard_program =
  let iv = Vocab.make ~rels:[ ("A", 1); ("B", 1) ] ~consts:[] in
  {
    Program.name = "hazard";
    input_vocab = iv;
    aux_vocab = Vocab.make ~rels:[] ~consts:[];
    init = (fun n -> Structure.create ~size:n iv);
    on_ins =
      [
        ( "A",
          Program.update ~params:[ "a" ]
            [ Program.rule "B" [ "x" ] (Formula.rel_v "A" [ "x" ]) ] );
      ];
    on_del = [];
    on_set = [];
    query = Formula.True;
    queries = [];
  }

let test_cross_input_write_warning () =
  expect_one ~what:"cross-input write" hazard_program D.Warning
    "on_ins A / rule B" "rule redefines input relation B from an on_ins A update";
  let r = Report.of_program hazard_program in
  check tb "ok non-strict" true (Report.ok r ~strict:false);
  check tb "fails strict" false (Report.ok r ~strict:true)

(* --- construction-time and runtime rejection of duplicate targets ---------- *)

let test_make_rejects_duplicate_target () =
  let iv = Vocab.make ~rels:[ ("A", 1) ] ~consts:[] in
  let av = Vocab.make ~rels:[ ("b", 0) ] ~consts:[] in
  Alcotest.check_raises "make rejects"
    (Invalid_argument
       "tiny/ins(A): update block redefines target b twice")
    (fun () ->
      ignore
        (Program.make ~name:"tiny" ~input_vocab:iv ~aux_vocab:av
           ~init:(fun n -> Structure.create ~size:n (Vocab.union iv av))
           ~on_ins:
             [
               ( "A",
                 Program.update ~params:[ "a" ]
                   [
                     Program.rule "b" [] Formula.True;
                     Program.rule "b" [] Formula.False;
                   ] );
             ]
           ~query:(Formula.rel "b" []) ()))

let test_runner_rejects_duplicate_target () =
  let p =
    map_update `Ins 0
      (fun (u : Program.update) ->
        { u with rules = List.hd u.rules :: u.rules })
      parity
  in
  let s = Runner.init p ~size:4 in
  Alcotest.check_raises "step rejects"
    (Invalid_argument "Runner.step: update block redefines target M twice")
    (fun () -> ignore (Runner.step s (Request.ins "M" [ 1 ])))

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_reach_u () =
  let m = Metrics.of_program reach_u in
  check ti "rule count" 8 m.Metrics.rule_count;
  check ti "max tuple exponent" 3 m.Metrics.max_tuple_exponent;
  check ti "max quantifier rank" 2 m.Metrics.max_quantifier_rank;
  check ti "max alternation depth" 1 m.Metrics.max_alternation_depth;
  check ti "max work exponent" 5 m.Metrics.max_work_exponent;
  (* the PV insert rule: 3 tuple vars, rank-2 body -> n^5 of work *)
  let pv =
    List.find
      (fun (r : Metrics.formula_metrics) -> r.path = "on_ins E / rule PV")
      m.Metrics.rules
  in
  check ti "pv tuple exponent" 3 pv.Metrics.tuple_exponent;
  check ti "pv work exponent" 5 pv.Metrics.work_exponent;
  (* the optimizer removes both quantifiers of the insert-PV rule *)
  check ti "pv optimized work exponent" 3 pv.Metrics.opt_work_exponent;
  (* but the delete-PV rule keeps its rank, so the program-level
     optimized maximum stays n^5 *)
  check ti "max optimized work" 5 m.Metrics.max_opt_work_exponent

let test_metrics_every_program_bounded () =
  List.iter
    (fun (e : Registry.entry) ->
      let m = Metrics.of_program e.program in
      check tb (e.name ^ " has rules") true (m.Metrics.rule_count > 0);
      check tb
        (e.name ^ " work exponent sane")
        true
        (m.Metrics.max_work_exponent >= 0
        && m.Metrics.max_work_exponent
           >= m.Metrics.max_tuple_exponent))
    Registry.all

(* --- verified optimizer ---------------------------------------------------- *)

module Rewrite = Dynfo_analysis.Rewrite
module Dataflow = Dynfo_analysis.Dataflow
module Advisor = Dynfo_analysis.Advisor

let test_optimize_registry_verified () =
  List.iter
    (fun (e : Registry.entry) ->
      let rep = Rewrite.optimize_program e.program in
      check ti
        (e.name ^ ": no rejected rewrites")
        0
        (List.length rep.Rewrite.rejections);
      check tb
        (e.name ^ ": work exponent not larger")
        true
        (rep.Rewrite.work_after <= rep.Rewrite.work_before);
      match Rewrite.check_equivalence e.program rep.Rewrite.optimized with
      | Ok n -> check tb (e.name ^ ": checkpoints") true (n > 0)
      | Error m -> Alcotest.failf "%s: optimized program diverges: %s" e.name m)
    Registry.all

let test_optimize_reach_u_one_point () =
  (* the symmetric-edge idiom  ex u v ((u=a & v=b | u=b & v=a) & ...)
     must collapse to a quantifier-free disjunction *)
  let rep = Rewrite.optimize_program reach_u in
  let c =
    List.find
      (fun (c : Rewrite.change) -> c.Rewrite.chg_path = "on_ins E / rule PV")
      rep.Rewrite.changes
  in
  check tb "one-point fired" true
    (List.mem "one-point" c.Rewrite.chg_passes);
  check ti "insert PV now quantifier-free" 0
    (Formula.quantifier_rank c.Rewrite.chg_after);
  check ti "was rank 2" 2 (Formula.quantifier_rank c.Rewrite.chg_before);
  check tb "model checking happened" true (rep.Rewrite.stats.Rewrite.checks > 0);
  check tb "some sizes exhaustive" true
    (rep.Rewrite.stats.Rewrite.exhaustive_upto >= 1)

(* --- mutation tests: hand-broken passes must be rejected ------------------- *)

let vocab_ab = Vocab.make ~rels:[ ("A", 1); ("B", 1) ] ~consts:[]

let test_verifier_rejects_dropped_negation () =
  let broken =
    {
      Rewrite.pass_name = "drop-negation";
      transform =
        Formula.map_bottom_up (function
          | Formula.Not g -> g
          | f -> f);
    }
  in
  let f = Parser.parse "ex x (A(x) & ~B(x))" in
  let out =
    Rewrite.optimize_formula ~passes:[ broken ] ~vocab:vocab_ab ~path:"t" f
  in
  check tb "original kept" true (Formula.equal out.Rewrite.result f);
  check tb "rejection recorded" true (out.Rewrite.rejected <> []);
  let r = List.hd out.Rewrite.rejected in
  check ts "rejected pass" "drop-negation" r.Rewrite.rej_pass

let test_verifier_rejects_widened_scope () =
  (* distributing ex over & widens each conjunct's witness scope *)
  let broken =
    {
      Rewrite.pass_name = "bad-distribute";
      transform =
        Formula.map_bottom_up (function
          | Formula.Exists (vs, Formula.And (a, b)) ->
              Formula.And (Formula.Exists (vs, a), Formula.Exists (vs, b))
          | f -> f);
    }
  in
  let f = Parser.parse "ex x (A(x) & B(x))" in
  let out =
    Rewrite.optimize_formula ~passes:[ broken ] ~vocab:vocab_ab ~path:"t" f
  in
  check tb "original kept" true (Formula.equal out.Rewrite.result f);
  check tb "rejection recorded" true (out.Rewrite.rejected <> [])

let test_verify_equiv_counterexample () =
  let before = Parser.parse "ex x (A(x) & B(x))" in
  let after = Parser.parse "ex x (A(x)) & ex x (B(x))" in
  match Rewrite.verify_equiv ~vocab:vocab_ab before after with
  | Ok _ -> Alcotest.fail "unsound rewrite passed verification"
  | Error cex ->
      check tb "values differ" true
        (cex.Rewrite.before_value <> cex.Rewrite.after_value);
      check tb "witness is small" true (cex.Rewrite.cex_size <= 4)

let test_verify_equiv_sound_rewrite () =
  let before = Parser.parse "~~A(x) | (B(x) & false)" in
  let after = Parser.parse "A(x)" in
  match Rewrite.verify_equiv ~vocab:vocab_ab before after with
  | Ok stats ->
      check tb "exhaustive on small sizes" true
        (stats.Rewrite.exhaustive_upto >= 2)
  | Error cex ->
      Alcotest.failf "sound rewrite rejected: %s"
        (Format.asprintf "%a" Rewrite.pp_counterexample cex)

(* --- dataflow -------------------------------------------------------------- *)

let test_dataflow_reach_u () =
  let d = Dataflow.of_program reach_u in
  check tb "PV live" true (List.mem "PV" d.Dataflow.live);
  check tb "E live" true (List.mem "E" d.Dataflow.live);
  check tb "edge PV reads F" true (List.mem ("PV", "F") d.Dataflow.edges);
  check ti "no dead relations" 0 (List.length d.Dataflow.dead_rels);
  check ti "no dead rules" 0 (List.length d.Dataflow.dead_rules);
  check ts "query reads PV" "PV" (List.hd d.Dataflow.query_reads);
  (* every block rewrites PV while reading it: hazards in both blocks *)
  List.iter
    (fun block ->
      check tb (block ^ " PV hazard") true
        (List.exists
           (fun (h : Dataflow.hazard) ->
             h.Dataflow.hz_block = block && h.Dataflow.hz_rel = "PV")
           d.Dataflow.hazards))
    [ "on_ins E"; "on_del E" ]

let test_dataflow_temps_expanded () =
  let d = Dataflow.of_program reach_u in
  let n =
    List.find
      (fun (n : Dataflow.rule_node) ->
        n.Dataflow.path = "on_del E / rule PV")
      d.Dataflow.nodes
  in
  (* the delete-PV rule consumes the temporaries New and T; its reads
     must name only pre-state relations *)
  check tb "no temporary names in reads" true
    ((not (List.mem "New" n.Dataflow.reads))
    && not (List.mem "T" n.Dataflow.reads));
  check tb "reads resolve to state relations" true
    (n.Dataflow.reads <> []
    && List.for_all
         (fun r -> List.mem r (d.Dataflow.inputs @ d.Dataflow.auxes))
         n.Dataflow.reads)

let test_dataflow_dead_relation () =
  (* graft an aux relation nothing ever queries onto parity *)
  let p =
    {
      parity with
      aux_vocab =
        Vocab.union parity.Program.aux_vocab
          (Vocab.make ~rels:[ ("JUNK", 1) ] ~consts:[]);
      on_ins =
        List.map
          (fun (k, (u : Program.update)) ->
            ( k,
              {
                u with
                rules =
                  u.rules
                  @ [ Program.rule "JUNK" [ "x" ] (Formula.rel_v "M" [ "x" ]) ];
              } ))
          parity.Program.on_ins;
    }
  in
  let d = Dataflow.of_program p in
  check tb "JUNK dead" true (List.mem "JUNK" d.Dataflow.dead_rels);
  check tb "JUNK rule dead" true
    (List.mem "on_ins M / rule JUNK" d.Dataflow.dead_rules);
  check tb "JUNK not live" true (not (List.mem "JUNK" d.Dataflow.live))

(* --- advisor and the auto backend ------------------------------------------ *)

let test_advisor_choices () =
  let adv name = Advisor.of_program (Registry.find name).program in
  (* delta-eligible programs get `Delta, with the old tuple/bulk
     heuristic preserved as the fallback backend *)
  check tb "reach_u -> delta" true ((adv "reach_u").Advisor.backend = `Delta);
  check tb "reach_u fallback bulk (n^5, BIT-free)" true
    ((adv "reach_u").Advisor.fallback = `Bulk);
  check tb "mult -> delta" true ((adv "mult").Advisor.backend = `Delta);
  check tb "mult fallback tuple (BIT-heavy)" true
    ((adv "mult").Advisor.fallback = `Tuple);
  check tb "parity fallback tuple (n^1)" true
    ((adv "parity").Advisor.fallback = `Tuple);
  (* pad_reach_a's rules carry no frame: the old heuristic survives *)
  check tb "pad_reach_a -> tuple (not delta-eligible)" true
    ((adv "pad_reach_a").Advisor.backend = `Tuple);
  let a = Advisor.of_program (Registry.find "mult").program in
  check tb "mult BIT fraction measured" true
    (a.Advisor.bit_fraction > 0.05)

let test_auto_backend_resolution () =
  Advisor.install ();
  check tb "runner resolves reach_u to delta" true
    (Runner.resolve_backend reach_u `Auto = `Delta);
  check tb "runner resolves parity to delta" true
    (Runner.resolve_backend parity `Auto = `Delta);
  let d = Dyn.of_program ~backend:`Auto reach_u in
  check tb "dyn name records resolution" true
    (String.length d.Dyn.name >= 12
    && String.sub d.Dyn.name (String.length d.Dyn.name - 12) 12
       = "[auto:delta]");
  Dynfo_engine.Pool.with_pool ~lanes:2 (fun pool ->
      let s =
        Dynfo_engine.Par_runner.init pool ~backend:`Auto reach_u ~size:5
      in
      check tb "parallel runner resolves at init" true
        (Dynfo_engine.Par_runner.backend s = `Delta))

let test_auto_matches_tuple () =
  Advisor.install ();
  List.iter
    (fun name ->
      let e = Registry.find name in
      let rng = Random.State.make [| 5 |] in
      let reqs = e.workload rng ~size:6 ~length:80 in
      match
        Harness.compare_all ~size:6
          [
            Dyn.of_program e.program;
            Dyn.of_program ~backend:`Auto e.program;
          ]
          reqs
      with
      | Harness.Ok _ -> ()
      | m ->
          Alcotest.failf "%s: auto diverges from tuple: %s" name
            (Format.asprintf "%a" Harness.pp_outcome m))
    [ "reach_u"; "mult"; "parity" ]

let () =
  Alcotest.run "analysis"
    [
      ( "registry",
        [
          Alcotest.test_case "whole registry clean" `Quick test_registry_clean;
          Alcotest.test_case "strict reports ok" `Quick
            test_registry_strict_reports;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "wrong rule arity" `Quick test_wrong_arity;
          Alcotest.test_case "wrong atom arity" `Quick test_wrong_arity_atom;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
          Alcotest.test_case "duplicate target" `Quick test_duplicate_target;
          Alcotest.test_case "temp before definition" `Quick
            test_temp_before_definition;
          Alcotest.test_case "temp shadows state" `Quick
            test_temp_shadows_state;
          Alcotest.test_case "rule targets temp" `Quick test_rule_targets_temp;
          Alcotest.test_case "query not a sentence" `Quick
            test_query_not_sentence;
          Alcotest.test_case "cross-input write warning" `Quick
            test_cross_input_write_warning;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "Program.make rejects duplicate targets" `Quick
            test_make_rejects_duplicate_target;
          Alcotest.test_case "Runner.step rejects duplicate targets" `Quick
            test_runner_rejects_duplicate_target;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reach_u numbers" `Quick test_metrics_reach_u;
          Alcotest.test_case "all programs bounded" `Quick
            test_metrics_every_program_bounded;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "whole registry optimizes, verified" `Slow
            test_optimize_registry_verified;
          Alcotest.test_case "reach_u one-point collapse" `Quick
            test_optimize_reach_u_one_point;
        ] );
      ( "rewrite-mutations",
        [
          Alcotest.test_case "dropped negation rejected" `Quick
            test_verifier_rejects_dropped_negation;
          Alcotest.test_case "widened quantifier scope rejected" `Quick
            test_verifier_rejects_widened_scope;
          Alcotest.test_case "counterexample reported" `Quick
            test_verify_equiv_counterexample;
          Alcotest.test_case "sound rewrite accepted" `Quick
            test_verify_equiv_sound_rewrite;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "reach_u graph" `Quick test_dataflow_reach_u;
          Alcotest.test_case "temporaries expanded" `Quick
            test_dataflow_temps_expanded;
          Alcotest.test_case "dead relation detected" `Quick
            test_dataflow_dead_relation;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "backend choices" `Quick test_advisor_choices;
          Alcotest.test_case "auto resolution" `Quick
            test_auto_backend_resolution;
          Alcotest.test_case "auto matches tuple" `Quick
            test_auto_matches_tuple;
        ] );
    ]
