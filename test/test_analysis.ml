(* Tests for the static analyzer: the whole registry must come out clean
   (precision), and systematic corruptions of known-good programs must
   each fire exactly the expected diagnostic (soundness). Corrupted
   programs are assembled by record surgery, bypassing [Program.make]'s
   own validation — exactly the hand-assembled programs the analyzer
   exists to catch. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
module D = Dynfo_analysis.Diagnostic
module Check = Dynfo_analysis.Check
module Metrics = Dynfo_analysis.Metrics
module Report = Dynfo_analysis.Report

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let ts = Alcotest.string

let show_diags ds = String.concat "\n" (List.map D.to_string ds)

(* assert a corruption yields exactly one diagnostic, with this severity,
   path and message *)
let expect_one ~what p severity path message =
  let ds = Check.program p in
  check ti (what ^ ": one diagnostic") 1 (List.length ds);
  let d = List.hd ds in
  check tb (what ^ ": severity") true (d.D.severity = severity);
  check ts (what ^ ": path") path d.D.path;
  check ts (what ^ ": message") message d.D.message

(* --- registry sweep: no false positives --------------------------------- *)

let test_registry_clean () =
  List.iter
    (fun (e : Registry.entry) ->
      let ds = Check.program e.program in
      check ti
        (Printf.sprintf "%s clean, got:\n%s" e.name (show_diags ds))
        0 (List.length ds))
    Registry.all

let test_registry_strict_reports () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = Report.of_program e.program in
      check tb (e.name ^ " ok strict") true (Report.ok r ~strict:true);
      check tb (e.name ^ " clean") true (Report.is_clean r))
    Registry.all

(* --- mutation helpers ---------------------------------------------------- *)

let map_update kind i f (p : Program.t) =
  let on l = List.mapi (fun j (key, u) -> if i = j then (key, f u) else (key, u)) l in
  match kind with
  | `Ins -> { p with on_ins = on p.on_ins }
  | `Del -> { p with on_del = on p.on_del }

let map_rule n f (u : Program.update) =
  { u with rules = List.mapi (fun j r -> if j = n then f r else r) u.rules }

let reach_u = (Registry.find "reach_u").program
let parity = (Registry.find "parity").program
let msf = (Registry.find "msf").program

(* --- corruption: wrong arity --------------------------------------------- *)

let test_wrong_arity () =
  (* give reach_u's F-rule a third tuple variable: F is binary *)
  let p =
    map_update `Ins 0
      (map_rule 1 (fun (r : Program.rule) ->
           { r with vars = r.vars @ [ "w" ] }))
      reach_u
  in
  expect_one ~what:"arity" p D.Error "on_ins E / rule F"
    "rule has 3 tuple variables, F has arity 2"

let test_wrong_arity_atom () =
  (* make an atom disagree with the declared arity of PV (ternary) *)
  let p =
    map_update `Ins 0
      (map_rule 0 (fun (r : Program.rule) ->
           { r with body = Formula.And (r.body, Formula.rel_v "PV" [ "x"; "y" ]) }))
      reach_u
  in
  expect_one ~what:"atom arity" p D.Error "on_ins E / rule E"
    "atom PV has 2 arguments, declared arity is 3"

(* --- corruption: unbound free variable ----------------------------------- *)

let test_unbound_variable () =
  let p =
    map_update `Ins 0
      (map_rule 0 (fun (r : Program.rule) ->
           {
             r with
             body =
               Formula.And (r.body, Formula.Eq (Formula.Var "zz", Formula.Min));
           }))
      parity
  in
  expect_one ~what:"unbound" p D.Error "on_ins M / rule M"
    "unbound free variable zz"

(* --- corruption: unknown relation ---------------------------------------- *)

let test_unknown_relation () =
  let p =
    map_update `Del 0
      (map_rule 0 (fun (r : Program.rule) ->
           { r with body = Formula.And (r.body, Formula.rel_v "NOPE" []) }))
      parity
  in
  expect_one ~what:"unknown rel" p D.Error "on_del M / rule M"
    "references unknown relation NOPE"

(* --- corruption: duplicate target in one simultaneous block -------------- *)

let test_duplicate_target () =
  let p =
    map_update `Ins 0
      (fun (u : Program.update) ->
        { u with rules = List.hd u.rules :: u.rules })
      msf
  in
  let target = (List.hd (List.assoc "E" msf.on_ins).rules).target in
  expect_one ~what:"duplicate target" p D.Error "on_ins E"
    (Printf.sprintf "simultaneous block redefines target %s" target)

(* --- corruption: temporary used before its definition --------------------- *)

let test_temp_before_definition () =
  (* reach_u's delete block defines T then New, and New's body reads T;
     swapping them is the classic use-before-definition *)
  let p =
    map_update `Del 0
      (fun (u : Program.update) -> { u with temps = List.rev u.temps })
      reach_u
  in
  expect_one ~what:"temp order" p D.Error "on_del E / temp New"
    "references temporary T before its definition"

(* --- corruption: temporary shadowing a state relation --------------------- *)

let test_temp_shadows_state () =
  let p =
    map_update `Del 0
      (fun (u : Program.update) ->
        {
          u with
          temps =
            u.temps @ [ Program.rule "F" [ "x"; "y" ] Formula.True ];
        })
      reach_u
  in
  (* two findings: the shadow itself, and the F rule now writing a temp *)
  let ds = Check.program p in
  check ti ("temp shadow: two diagnostics, got:\n" ^ show_diags ds) 2
    (List.length ds);
  let d1 = List.nth ds 0 and d2 = List.nth ds 1 in
  check ts "shadow path" "on_del E / temp F" d1.D.path;
  check ts "shadow message" "temporary F shadows a state relation"
    d1.D.message;
  check ts "knock-on path" "on_del E / rule F" d2.D.path;
  check ts "knock-on message"
    "rule targets temporary F (temporaries are discarded after the update)"
    d2.D.message

(* --- corruption: rule targeting a temporary ------------------------------- *)

let test_rule_targets_temp () =
  let p =
    map_update `Del 0
      (map_rule 0 (fun (r : Program.rule) -> { r with target = "T" }))
      reach_u
  in
  let ds = Check.program p in
  check tb
    ("targets temp, got:\n" ^ show_diags ds)
    true
    (List.exists
       (fun d ->
         d.D.path = "on_del E / rule T"
         && d.D.message
            = "rule targets temporary T (temporaries are discarded after \
               the update)")
       ds)

(* --- corruption: query with a free non-constant variable ------------------- *)

let test_query_not_sentence () =
  let p = { reach_u with query = Parser.parse "PV(s, t, q)" } in
  expect_one ~what:"query sentence" p D.Error "query"
    "not a sentence: free variable q"

(* --- hazard warning: rule writing another input relation ------------------- *)

let hazard_program =
  let iv = Vocab.make ~rels:[ ("A", 1); ("B", 1) ] ~consts:[] in
  {
    Program.name = "hazard";
    input_vocab = iv;
    aux_vocab = Vocab.make ~rels:[] ~consts:[];
    init = (fun n -> Structure.create ~size:n iv);
    on_ins =
      [
        ( "A",
          Program.update ~params:[ "a" ]
            [ Program.rule "B" [ "x" ] (Formula.rel_v "A" [ "x" ]) ] );
      ];
    on_del = [];
    on_set = [];
    query = Formula.True;
    queries = [];
  }

let test_cross_input_write_warning () =
  expect_one ~what:"cross-input write" hazard_program D.Warning
    "on_ins A / rule B" "rule redefines input relation B from an on_ins A update";
  let r = Report.of_program hazard_program in
  check tb "ok non-strict" true (Report.ok r ~strict:false);
  check tb "fails strict" false (Report.ok r ~strict:true)

(* --- construction-time and runtime rejection of duplicate targets ---------- *)

let test_make_rejects_duplicate_target () =
  let iv = Vocab.make ~rels:[ ("A", 1) ] ~consts:[] in
  let av = Vocab.make ~rels:[ ("b", 0) ] ~consts:[] in
  Alcotest.check_raises "make rejects"
    (Invalid_argument
       "tiny/ins(A): update block redefines target b twice")
    (fun () ->
      ignore
        (Program.make ~name:"tiny" ~input_vocab:iv ~aux_vocab:av
           ~init:(fun n -> Structure.create ~size:n (Vocab.union iv av))
           ~on_ins:
             [
               ( "A",
                 Program.update ~params:[ "a" ]
                   [
                     Program.rule "b" [] Formula.True;
                     Program.rule "b" [] Formula.False;
                   ] );
             ]
           ~query:(Formula.rel "b" []) ()))

let test_runner_rejects_duplicate_target () =
  let p =
    map_update `Ins 0
      (fun (u : Program.update) ->
        { u with rules = List.hd u.rules :: u.rules })
      parity
  in
  let s = Runner.init p ~size:4 in
  Alcotest.check_raises "step rejects"
    (Invalid_argument "Runner.step: update block redefines target M twice")
    (fun () -> ignore (Runner.step s (Request.ins "M" [ 1 ])))

(* --- metrics -------------------------------------------------------------- *)

let test_metrics_reach_u () =
  let m = Metrics.of_program reach_u in
  check ti "rule count" 8 m.Metrics.rule_count;
  check ti "max tuple exponent" 3 m.Metrics.max_tuple_exponent;
  check ti "max quantifier rank" 2 m.Metrics.max_quantifier_rank;
  check ti "max alternation depth" 1 m.Metrics.max_alternation_depth;
  check ti "max work exponent" 5 m.Metrics.max_work_exponent;
  (* the PV insert rule: 3 tuple vars, rank-2 body -> n^5 of work *)
  let pv =
    List.find
      (fun (r : Metrics.formula_metrics) -> r.path = "on_ins E / rule PV")
      m.Metrics.rules
  in
  check ti "pv tuple exponent" 3 pv.Metrics.tuple_exponent;
  check ti "pv work exponent" 5 pv.Metrics.work_exponent

let test_metrics_every_program_bounded () =
  List.iter
    (fun (e : Registry.entry) ->
      let m = Metrics.of_program e.program in
      check tb (e.name ^ " has rules") true (m.Metrics.rule_count > 0);
      check tb
        (e.name ^ " work exponent sane")
        true
        (m.Metrics.max_work_exponent >= 0
        && m.Metrics.max_work_exponent
           >= m.Metrics.max_tuple_exponent))
    Registry.all

let () =
  Alcotest.run "analysis"
    [
      ( "registry",
        [
          Alcotest.test_case "whole registry clean" `Quick test_registry_clean;
          Alcotest.test_case "strict reports ok" `Quick
            test_registry_strict_reports;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "wrong rule arity" `Quick test_wrong_arity;
          Alcotest.test_case "wrong atom arity" `Quick test_wrong_arity_atom;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
          Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
          Alcotest.test_case "duplicate target" `Quick test_duplicate_target;
          Alcotest.test_case "temp before definition" `Quick
            test_temp_before_definition;
          Alcotest.test_case "temp shadows state" `Quick
            test_temp_shadows_state;
          Alcotest.test_case "rule targets temp" `Quick test_rule_targets_temp;
          Alcotest.test_case "query not a sentence" `Quick
            test_query_not_sentence;
          Alcotest.test_case "cross-input write warning" `Quick
            test_cross_input_write_warning;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "Program.make rejects duplicate targets" `Quick
            test_make_rejects_duplicate_target;
          Alcotest.test_case "Runner.step rejects duplicate targets" `Quick
            test_runner_rejects_duplicate_target;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reach_u numbers" `Quick test_metrics_reach_u;
          Alcotest.test_case "all programs bounded" `Quick
            test_metrics_every_program_bounded;
        ] );
    ]
