(* Tests for the definable-change analysis and the batch-absorption
   machinery it licenses. Three angles: the registry matrices must only
   claim what the model checker confirmed (known verdicts included);
   hand-mutated programs whose update blocks genuinely differ from
   default maintenance must never come out [Absorb] — and forcing the
   verdict anyway must be observably wrong, proving the analyzer's
   refusal matters; and the whole-batch law (certified batch tick ≡
   singleton-sequence fold of the pre-state expansion, answers and
   final relations both) is replayed as a qcheck property over the
   whole registry across all four backends and the parallel engine at
   1 and 4 lanes, with set and FO-defined requests mixed in. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
module D = Dynfo_analysis.Defchange
module Advisor = Dynfo_analysis.Advisor
module Commute = Dynfo_analysis.Commute
module Pool = Dynfo_engine.Pool
module Par_runner = Dynfo_engine.Par_runner

let () =
  Advisor.install ();
  Commute.install ();
  D.install ()

let check = Alcotest.check
let tb = Alcotest.bool
let find name = (Registry.find name).Registry.program
let backends = [ `Tuple; `Bulk; `Delta; `Auto ]

(* --- matrices claim only what was confirmed ------------------------------ *)

let test_matrix_confirmed () =
  List.iter
    (fun name ->
      let m = D.matrix_of (find name) in
      List.iter
        (fun (c : D.cell) ->
          match c.D.d_verdict with
          | D.Absorb | D.Stream ->
              check tb
                (Printf.sprintf "%s: %s verdict confirmed" name
                   (D.op_name c.D.d_op))
                true
                (c.D.d_checks > 0 && c.D.d_domain <> None)
          | D.Fold ->
              check tb
                (Printf.sprintf "%s: %s fold carries a refutation" name
                   (D.op_name c.D.d_op))
                true (c.D.d_checks > 0)
          | D.Unknown -> ())
        m.D.m_cells)
    [ "parity"; "reach_u"; "matching" ]

let test_known_verdicts () =
  let m = D.matrix_of (find "parity") in
  (* the b-rule reads M(a): members observe each other, absorb is
     refuted — but the group still streams under one delta scope *)
  check tb "parity ins M streams" true (D.verdict m `Ins "M" = D.Stream);
  check tb "parity del M streams" true (D.verdict m `Del "M" = D.Stream);
  (match D.find_cell m `Ins "M" with
  | Some c ->
      check tb "parity ins M absorb law refuted" true
        (not c.D.d_absorb.D.law_holds);
      check tb "parity ins M definable law confirmed" true
        (c.D.d_definable.D.law_holds && c.D.d_definable.D.law_checks > 0)
  | None -> Alcotest.fail "parity ins M cell missing");
  let mr = D.matrix_of (find "reach_u") in
  check tb "reach_u ins E streams" true (D.verdict mr `Ins "E" = D.Stream);
  (* no on_set block: whole set-groups absorb as default maintenance *)
  check tb "reach_u set s absorbs" true (D.verdict mr `Set "s" = D.Absorb);
  check tb "reach_u set t absorbs" true (D.verdict mr `Set "t" = D.Absorb);
  (* the installed oracle answers what the matrix verified *)
  check tb "oracle: reach_u set s -> `Absorb" true
    (D.oracle_of (find "reach_u") `Set "s" = `Absorb);
  check tb "oracle: parity ins M -> `Stream" true
    (D.oracle_of (find "parity") `Ins "M" = `Stream)

let test_mc_size_zero_is_unknown () =
  let m = D.analyze ~max_size:0 (find "parity") in
  List.iter
    (fun (c : D.cell) ->
      check tb
        (Printf.sprintf "mc-size 0: %s is Unknown" (D.op_name c.D.d_op))
        true
        (c.D.d_verdict = D.Unknown);
      check tb "Unknown maps to the safe `Fold" true
        (match D.verdict m c.D.d_op.Commute.op_kind c.D.d_op.Commute.op_rel with
        | D.Unknown -> true
        | _ -> false))
    m.D.m_cells

(* --- mutation: a batch-sensitive block is never granted Absorb ----------- *)

let m_vocab = Vocab.make ~rels:[ ("M", 1) ] ~consts:[]
let a_vocab = Vocab.make ~rels:[ ("A", 1) ] ~consts:[]

(* first-insert latch: [A] records elements whose insertion was the
   first (M(a) false in the pre-state). The M-rule is exactly default
   maintenance, so an absorbing batch would keep M right but drop every
   A record — [ins 0] on an empty state differs observably. *)
let first_insert =
  Program.make ~name:"first-insert" ~input_vocab:m_vocab ~aux_vocab:a_vocab
    ~init:(fun n -> Structure.create ~size:n (Vocab.union m_vocab a_vocab))
    ~on_ins:
      [
        ( "M",
          Program.update ~params:[ "a" ]
            [
              Program.rule_s "M" [ "x" ] "M(x) | x = a";
              Program.rule_s "A" [ "x" ] "A(x) | (x = a & ~M(a))";
            ] );
      ]
    ~query:(Parser.parse "ex x (A(x))") ()

let test_mutation_rejects_absorb () =
  let m = D.analyze first_insert in
  check tb "first-insert ins M is not Absorb" true
    (D.verdict m `Ins "M" <> D.Absorb);
  (match D.find_cell m `Ins "M" with
  | Some c ->
      check tb "absorb law refuted with a counterexample" true
        (not c.D.d_absorb.D.law_holds)
  | None -> Alcotest.fail "first-insert ins M cell missing");
  check tb "oracle never answers `Absorb for it" true
    (D.oracle_of first_insert `Ins "M" <> `Absorb);
  (* the refusal matters: forcing `Absorb anyway is observably wrong *)
  let s0 = Runner.init first_insert ~size:4 in
  let batch = [ Request.ins "M" [ 0 ]; Request.ins "M" [ 1 ] ] in
  let fold_s = Runner.run s0 batch in
  let forced =
    Runner.step_batch ~oracle:Runner.null_oracle
      ~defchange:(fun _ _ -> `Absorb)
      s0 batch
  in
  check tb "forced absorption diverges from the fold" false
    (Structure.equal (Runner.structure fold_s) (Runner.structure forced));
  (* ... and the honest batch path (installed oracle) agrees with it *)
  let honest = Runner.step_batch s0 batch in
  check tb "oracle-driven batch matches the fold" true
    (Structure.equal (Runner.structure fold_s) (Runner.structure honest))

(* --- qcheck: certified batches == singleton fold, whole registry --------- *)

let qprogs = List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all

(* Lift a singleton workload into batch request forms: contiguous runs
   of the same (kind, relation) collapse into ins*/del* tuple lists,
   and on a cadence an FO-defined range change rides along. The
   reference semantics is the pre-state expansion's fold, so arbitrary
   mixes stay comparable. *)
let lift_batch rng (p : Program.t) ~size reqs =
  let tup = function
    | Request.Ins (_, t) | Request.Del (_, t) -> Array.to_list t
    | _ -> assert false
  in
  let rec runs acc cur = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | r :: rest -> (
        match (r, cur) with
        | (Request.Ins (n, _) | Request.Del (n, _)), prev :: _
          when Runner.op_key r = Runner.op_key prev
               && Random.State.bool rng ->
            ignore n;
            runs acc (r :: cur) rest
        | _ -> runs (if cur = [] then acc else List.rev cur :: acc) [ r ] rest)
  in
  let collapse group =
    match group with
    | (Request.Ins (n, _) :: _ | Request.Del (n, _) :: _)
      when List.length group > 1 -> (
        match List.hd group with
        | Request.Ins _ -> [ Request.ins_set n (List.map tup group) ]
        | _ -> [ Request.del_set n (List.map tup group) ])
    | g -> g
  in
  let base = List.concat_map collapse (runs [] [] reqs) in
  match Vocab.relations p.input_vocab with
  | (s : Vocab.sym) :: _ when s.arity >= 1 && Random.State.int rng 3 = 0 ->
      let vars = List.init s.arity (fun i -> Printf.sprintf "qv%d" i) in
      let lim = 1 + Random.State.int rng size in
      let phi =
        Formula.conj
          (List.map
             (fun x -> Formula.Lt (Formula.Var x, Formula.Num lim))
             vars)
      in
      let def =
        if Random.State.bool rng then Request.Ins_def (s.name, vars, phi)
        else Request.Del_def (s.name, vars, phi)
      in
      base @ [ def ]
  | _ -> base

let batch_qcheck =
  QCheck.Test.make
    ~name:
      "certified batch tick == singleton fold (answers and relations), \
       every backend, whole registry"
    ~count:60
    QCheck.(triple (int_range 1 100_000) (int_range 1 30) (oneofl qprogs))
    (fun (seed, length, name) ->
      let e = Registry.find name in
      let size = 6 in
      let rng = Random.State.make [| 0xDC; seed |] in
      let reqs = e.Registry.workload rng ~size ~length in
      let batch = lift_batch rng e.Registry.program ~size reqs in
      let s0 = Runner.init e.Registry.program ~size in
      let expanded = Request.expand_batch (Runner.structure s0) batch in
      List.for_all
        (fun backend ->
          let a = Runner.run ~backend s0 expanded in
          let b = Runner.step_batch ~backend s0 batch in
          Structure.equal (Runner.structure a) (Runner.structure b)
          && Runner.query ~backend a = Runner.query ~backend b)
        backends)

let par_batch_qcheck =
  QCheck.Test.make
    ~name:"parallel step_batch honors the same verdicts (1 and 4 lanes)"
    ~count:20
    QCheck.(triple (int_range 1 100_000) (int_range 1 20) (oneofl qprogs))
    (fun (seed, length, name) ->
      let e = Registry.find name in
      let size = 6 in
      let rng = Random.State.make [| 0xDC; seed |] in
      let reqs = e.Registry.workload rng ~size ~length in
      let batch = lift_batch rng e.Registry.program ~size reqs in
      let s0 = Runner.init e.Registry.program ~size in
      let expanded = Request.expand_batch (Runner.structure s0) batch in
      let want = Runner.run ~backend:`Delta s0 expanded in
      List.for_all
        (fun lanes ->
          Pool.with_pool ~lanes (fun pool ->
              let ps = Par_runner.wrap pool ~backend:`Delta s0 in
              let got = Par_runner.step_batch ps batch in
              Structure.equal (Runner.structure want)
                (Par_runner.structure got)
              && Runner.query ~backend:`Delta want = Par_runner.query got))
        [ 1; 4 ])

let () =
  Alcotest.run "defchange"
    [
      ( "matrix",
        [
          Alcotest.test_case "verdicts are confirmed" `Quick
            test_matrix_confirmed;
          Alcotest.test_case "known verdicts" `Quick test_known_verdicts;
          Alcotest.test_case "mc-size 0 degrades to Unknown" `Quick
            test_mc_size_zero_is_unknown;
          Alcotest.test_case "mutation never absorbs" `Quick
            test_mutation_rejects_absorb;
        ] );
      ( "laws",
        [
          QCheck_alcotest.to_alcotest batch_qcheck;
          QCheck_alcotest.to_alcotest par_batch_qcheck;
        ] );
    ]
