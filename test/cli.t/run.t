The problem catalogue lists every reproduced result:

  $ dynfo_cli list | head -6
  NAME             PAPER                  IMPLEMENTATIONS
  parity           Example 3.2            fo, native, static
  reach_u          Theorem 4.1            fo, native, static
  reach_acyclic    Theorem 4.2            fo, native, static
  trans_reduction  Corollary 4.3          fo, static
  msf              Theorem 4.4            fo, native, static

Formula statistics of the Theorem 4.1 program:

  $ dynfo_cli stats reach_u
  reach_u (Theorem 4.1)
    rules                  8
    max_quantifier_depth   2
    max_formula_size       44
    max_aux_arity          3
    query                  s = t | PV(s, t, s)

A scripted session — connect, disconnect, reconnect:

  $ cat > script.txt <<'REQS'
  > set s 0
  > set t 3
  > ins E (0,1)
  > ins E (1,2)
  > ins E (2,3)
  > del E (1,2)
  > ins E (1,3)
  > REQS
  $ dynfo_cli run reach_u -n 6 --script script.txt
  set s 0              query = true
  set t 3              query = false
  ins E (0,1)          query = false
  ins E (1,2)          query = false
  ins E (2,3)          query = true
  del E (1,2)          query = false
  ins E (1,3)          query = true

Malformed or invalid requests are reported without aborting the script:

  $ printf 'ins M (2)\nins E (0,1)\nfrobnicate\n' | dynfo_cli run parity -n 4
  ins M (2)            query = true
  ins E (0,1)          error: Runner.step: invalid request ins E (0,1) for program parity-fo
  frobnicate           error: Request.parse: malformed "frobnicate"

Randomized cross-checking of all implementations of a problem:

  $ dynfo_cli check parity --length 100 --seed 3
  checking parity at n=16 over 100 requests (seed 3): ok (100 checkpoints, 3 implementations)
    tuple work/step: total 2682, mean 26.8, max 35
    page counters: pages allocated 0, skip hits 0, rebuilds 0
    commute plan: 17 group(s) over 100 requests (max run 14)

  $ dynfo_cli check reach_u -n 6 --length 60 --seed 1
  checking reach_u at n=6 over 60 requests (seed 1): ok (60 checkpoints, 3 implementations)
    tuple work/step: total 502462, mean 8374.4, max 19758
    page counters: pages allocated 0, skip hits 0, rebuilds 0
    commute plan: 30 group(s) over 60 requests (max run 6)

The set-at-a-time bitset backend joins the comparison under --backend
bulk (one extra implementation), and runs the same scripts:

  $ dynfo_cli check reach_u -n 6 --length 60 --seed 1 --backend bulk
  checking reach_u at n=6 over 60 requests (seed 1): ok (60 checkpoints, 4 implementations)
    bulk work/step: total 397562, mean 6626.0, max 11831
    page counters: pages allocated 0, skip hits 0, rebuilds 0
    commute plan: 30 group(s) over 60 requests (max run 6)

  $ dynfo_cli run reach_u -n 6 --script script.txt --backend bulk
  set s 0              query = true
  set t 3              query = false
  ins E (0,1)          query = false
  ins E (1,2)          query = false
  ins E (2,3)          query = true
  del E (1,2)          query = false
  ins E (1,3)          query = true

The incremental delta backend re-evaluates only the dirty frontier the
static support analysis derives, and does measurably less work per
step than the full backends above:

  $ dynfo_cli check reach_u -n 6 --length 60 --seed 1 --backend delta
  checking reach_u at n=6 over 60 requests (seed 1): ok (60 checkpoints, 4 implementations)
    delta work/step: total 202086, mean 3368.1, max 10105
    delta counters: fast hits 81, memo hits 156, memo misses 0, mask builds 0
    frontier state: small frontiers 127, mask reuses 0, words cleared 0
    page counters: pages allocated 0, skip hits 0, rebuilds 0
    commute plan: 30 group(s) over 60 requests (max run 6)

  $ dynfo_cli run reach_u -n 6 --script script.txt --backend delta
  set s 0              query = true
  set t 3              query = false
  ins E (0,1)          query = false
  ins E (1,2)          query = false
  ins E (2,3)          query = true
  del E (1,2)          query = false
  ins E (1,3)          query = true

--bitrel paged switches newly allocated bitsets to the page-table
store; the page counters in check's report show the residency the
kernels actually touched (a dense run leaves them at zero, above):

  $ dynfo_cli check semi_reach --backend bulk --bitrel paged | grep 'page counters'
    page counters: pages allocated 1032, skip hits 0, rebuilds 0

--muddle arms start-over-and-muddle-through: with the delta budget
forced to zero every framed step hands its recompute to a background
rebuild, queries answer from the stale structure meanwhile, and the
drained result is verified against the purely sequential run:

  $ dynfo_cli check semi_reach --backend delta --muddle --delta-cutoff 0 | grep -E 'muddle|rebuilds'
    page counters: pages allocated 0, skip hits 0, rebuilds 172
    muddle: 172 rebuild(s), converged to sequential semantics

The advisor's representation chooser recommends dense or paged per
(relation, n) with --advise --size — the same ~16 MB threshold the
allocator's auto mode applies, plus a row for the widest rule scope:

  $ dynfo_cli analyze --advise --size 10000 reach_u | tail -4
    E/2 at n=10000: dense (1587302 words)
    F/2 at n=10000: dense (1587302 words)
    PV/3 at n=10000: paged (15873015874 words)
    (scope)/5 at n=10000: paged (overflowing words)

  $ dynfo_cli analyze --support parity
  parity-fo: delta-eligible
    on_ins M / rule M                frame out=bounded in=bounded
    on_ins M / rule b                frame out=guarded in=guarded
    on_del M / rule M                frame out=bounded in=bounded
    on_del M / rule b                frame out=guarded in=guarded
  

check needs a problem or --all:

  $ dynfo_cli check 2>&1 | grep -c 'PROBLEM'
  2

Unknown problems produce a helpful error:

  $ dynfo_cli stats no_such_problem 2>&1 | grep -c 'unknown problem'
  1

Static analysis of a single program prints diagnostics and cost metrics:

  $ dynfo_cli analyze reach_u
  reach_u-fo: 8 update rules, CRAM[1] work n^5
    PATH                             k  rank   alt   size  width     work    opt
    on_ins E / rule E                2     0     0      9      4      n^2    n^2
    on_ins E / rule F                2     0     0     14      4      n^2    n^2
    on_ins E / rule PV               3     2     1     35      7      n^5    n^3
    on_del E / temp T                3     0     0      6      5      n^3    n^3
    on_del E / temp New              2     2     1     44      6      n^4    n^4
    on_del E / rule E                2     0     0     10      4      n^2    n^2
    on_del E / rule F                2     0     0     16      4      n^2    n^2
    on_del E / rule PV               3     2     1     33      7      n^5    n^5
    query                            0     0     0      3      2      n^0    n^0
    max: tuple space n^3, quantifier rank 2, alternation depth 1, work n^5 (n^5 optimized); total formula size 170
    dataflow: 7 dependency edge(s), 6 hazard(s), 0 dead relation(s)
    advice: --backend delta (cutoff 2048) — every update rule carries a frame with bounded/guarded supports: incremental frontier evaluation, falling back to bulk past the --delta-cutoff (work n^5 at or above the n^5 dense threshold with BIT-free bodies: set-at-a-time bitset kernels amortize the enumeration)

The whole registry is clean under --strict (exit 0):

  $ dynfo_cli analyze --all --strict
  parity-fo        ok — 4 rules, work n^1
  reach_u-fo       ok — 8 rules, work n^5
  reach_acyclic-fo ok — 2 rules, work n^4
  trans_reduction-fo ok — 5 rules, work n^4
  msf-fo           ok — 10 rules, work n^6
  bipartite-fo     ok — 11 rules, work n^5
  k_edge_1-fo      ok — 8 rules, work n^8
  matching-fo      ok — 8 rules, work n^3
  lca-fo           ok — 2 rules, work n^4
  regular-fo       ok — 20 rules, work n^4
  mult-fo          ok — 12 rules, work n^5
  dyck_2-fo        ok — 24 rules, work n^6
  eulerian-fo      ok — 10 rules, work n^5
  semi_reach-fo    ok — 1 rules, work n^2
  pad_reach_a-fo   ok — 4 rules, work n^3
  $ echo "exit: $?"
  exit: 0

JSON output for tooling:

  $ dynfo_cli analyze parity --json
  [{"version": 4, "program": "parity-fo", "diagnostics": [], "metrics": {"program": "parity-fo", "rule_count": 4, "max_tuple_exponent": 1, "max_quantifier_rank": 0, "max_alternation_depth": 0, "max_work_exponent": 1, "max_opt_work_exponent": 1, "total_formula_size": 26, "rules": [{"path": "on_ins M / rule M", "target": "M", "tuple_exponent": 1, "quantifier_rank": 0, "alternation_depth": 0, "formula_size": 3, "width": 2, "work_exponent": 1, "opt_quantifier_rank": 0, "opt_work_exponent": 1}, {"path": "on_ins M / rule b", "target": "b", "tuple_exponent": 0, "quantifier_rank": 0, "alternation_depth": 0, "formula_size": 9, "width": 1, "work_exponent": 0, "opt_quantifier_rank": 0, "opt_work_exponent": 0}, {"path": "on_del M / rule M", "target": "M", "tuple_exponent": 1, "quantifier_rank": 0, "alternation_depth": 0, "formula_size": 4, "width": 2, "work_exponent": 1, "opt_quantifier_rank": 0, "opt_work_exponent": 1}, {"path": "on_del M / rule b", "target": "b", "tuple_exponent": 0, "quantifier_rank": 0, "alternation_depth": 0, "formula_size": 9, "width": 1, "work_exponent": 0, "opt_quantifier_rank": 0, "opt_work_exponent": 0}], "queries": [{"path": "query", "target": "query", "tuple_exponent": 0, "quantifier_rank": 0, "alternation_depth": 0, "formula_size": 1, "width": 0, "work_exponent": 0, "opt_quantifier_rank": 0, "opt_work_exponent": 0}]}, "dataflow": {"program": "parity-fo", "rules": [{"path": "on_ins M / rule M", "target": "M", "temp": false, "reads": ["M"]}, {"path": "on_ins M / rule b", "target": "b", "temp": false, "reads": ["b", "M"]}, {"path": "on_del M / rule M", "target": "M", "temp": false, "reads": ["M"]}, {"path": "on_del M / rule b", "target": "b", "temp": false, "reads": ["b", "M"]}], "edges": [["M", "M"], ["b", "b"], ["b", "M"]], "query_reads": ["b"], "live": ["M", "b"], "dead_relations": [], "dead_rules": [], "hazards": [{"block": "on_ins M", "relation": "M", "writer": "on_ins M / rule M", "readers": ["on_ins M / rule M", "on_ins M / rule b"]}, {"block": "on_ins M", "relation": "b", "writer": "on_ins M / rule b", "readers": ["on_ins M / rule b"]}, {"block": "on_del M", "relation": "M", "writer": "on_del M / rule M", "readers": ["on_del M / rule M", "on_del M / rule b"]}, {"block": "on_del M", "relation": "b", "writer": "on_del M / rule b", "readers": ["on_del M / rule b"]}]}, "advice": {"program": "parity-fo", "backend": "delta", "fallback": "tuple", "par_cutoff": 2048, "max_work_exponent": 1, "bit_fraction": 0.000, "reason": "every update rule carries a frame with bounded/guarded supports: incremental frontier evaluation, falling back to tuple past the --delta-cutoff (work n^1 below the n^5 dense threshold: per-tuple short-circuit evaluation is cheaper than materializing bitsets)"}}]

The commutativity matrix: every Commute verdict is model-checked, and
cell reasons say which evidence layer produced it:

  $ dynfo_cli analyze parity --commute
  parity-fo: 2 op(s) — C commute / X conflict / ? unknown
             ins M    del M  
    ins M    C        C      
    del M    C        C      
    ins M: writes M,b; idempotent (synthetic, 196 checks); no-op on redundant requests (synthetic, 98 checks)
    del M: writes M,b; idempotent (synthetic, 196 checks); no-op on redundant requests (synthetic, 98 checks)
    (ins M, ins M): commute [mc-only] — no static independence proof; confirmed on synthetic structures (496 checks, exhaustive to n=4)
    (ins M, del M): commute [mc-only] — no static independence proof; confirmed on synthetic structures (496 checks, exhaustive to n=4)
    (del M, del M): commute [mc-only] — no static independence proof; confirmed on synthetic structures (496 checks, exhaustive to n=4)
  



The definable-change matrix: per-op batch verdicts (A absorb /
S stream / F fold / ? unknown), each licensed by model-checked laws
over whole batches:

  $ dynfo_cli analyze parity --defchange
  parity-fo: 2 op(s) — A absorb / S stream / F fold / ? unknown
    S ins M: stream [frames] — every rule carries a slab frame — one union mask per group; absorb refuted at n=1, args (0); stream law confirmed on synthetic structures (3436 checks, exhaustive to n=4); definable-change expansion confirmed on synthetic structures (3436 checks, exhaustive to n=4)
        not absorb; stream (synthetic, 3436 checks); definable (synthetic, 3436 checks)
    S del M: stream [frames] — every rule carries a slab frame — one union mask per group; absorb refuted at n=1, args (0); stream law confirmed on synthetic structures (3436 checks, exhaustive to n=4); definable-change expansion confirmed on synthetic structures (3436 checks, exhaustive to n=4)
        not absorb; stream (synthetic, 3436 checks); definable (synthetic, 3436 checks)
  

  $ dynfo_cli analyze parity --defchange --json
  [{"version": 4, "program": "parity-fo", "cells": [{"op": "ins M", "arity": 1, "verdict": "stream", "source": "frames", "domain": "synthetic", "checks": 6876, "exhaustive_upto": 4, "absorb": {"holds": false, "domain": "synthetic", "checks": 4}, "stream": {"holds": true, "domain": "synthetic", "checks": 3436}, "definable": {"holds": true, "domain": "synthetic", "checks": 3436}, "reason": "every rule carries a slab frame — one union mask per group; absorb refuted at n=1, args (0); stream law confirmed on synthetic structures (3436 checks, exhaustive to n=4); definable-change expansion confirmed on synthetic structures (3436 checks, exhaustive to n=4)"}, {"op": "del M", "arity": 1, "verdict": "stream", "source": "frames", "domain": "synthetic", "checks": 6873, "exhaustive_upto": 4, "absorb": {"holds": false, "domain": "synthetic", "checks": 1}, "stream": {"holds": true, "domain": "synthetic", "checks": 3436}, "definable": {"holds": true, "domain": "synthetic", "checks": 3436}, "reason": "every rule carries a slab frame — one union mask per group; absorb refuted at n=1, args (0); stream law confirmed on synthetic structures (3436 checks, exhaustive to n=4); definable-change expansion confirmed on synthetic structures (3436 checks, exhaustive to n=4)"}]}]

With --mc-size 0 nothing is checked, every verdict degrades to
Unknown, and --strict treats an Unknown cell as unsafe:

  $ dynfo_cli analyze parity --defchange --mc-size 0 --strict
  parity-fo: 2 op(s) — A absorb / S stream / F fold / ? unknown
    ? ins M: unknown [frames] — no state/argument combination checked — unverified
        not absorb; not stream; not definable
    ? del M: unknown [frames] — no state/argument combination checked — unverified
        not absorb; not stream; not definable
  
  parity-fo: unverified (Unknown) batch verdict — treated as unsafe
  [1]

Naming no problem is an error:

  $ dynfo_cli analyze 2>&1 | grep -c 'PROBLEM'
  2

The advisor recommends a backend per program (--advise), and the
dependency graph renders as DOT (--graph):

  $ dynfo_cli analyze --advise reach_u
  reach_u-fo: --backend delta, parallel cutoff 2048 — every update rule carries a frame with bounded/guarded supports: incremental frontier evaluation, falling back to bulk past the --delta-cutoff (work n^5 at or above the n^5 dense threshold with BIT-free bodies: set-at-a-time bitset kernels amortize the enumeration)

  $ dynfo_cli analyze --advise mult
  mult-fo: --backend delta, parallel cutoff 2048 — every update rule carries a frame with bounded/guarded supports: incremental frontier evaluation, falling back to tuple past the --delta-cutoff (BIT-heavy bodies (32% of atoms): word-parallel kernels degrade to per-bit probes, short-circuiting tuple evaluation wins)

  $ dynfo_cli analyze --graph reach_u
  digraph "reach_u-fo" {
    rankdir=LR;
    node [fontname="monospace"];
    "E" [shape=box];
    "F" [shape=ellipse];
    "PV" [shape=ellipse];
    "query" [shape=diamond];
    "E" -> "E";
    "F" -> "F";
    "PV" -> "F";
    "PV" -> "PV";
    "E" -> "F";
    "F" -> "PV";
    "E" -> "PV";
    "PV" -> "query";
  }

--backend auto resolves through the advisor (reach_u runs bulk, the
answers are bit-for-bit the tuple backend's):

  $ dynfo_cli run reach_u -n 6 --script script.txt --backend auto
  set s 0              query = true
  set t 3              query = false
  ins E (0,1)          query = false
  ins E (1,2)          query = false
  ins E (2,3)          query = true
  del E (1,2)          query = false
  ins E (1,3)          query = true

The verified optimizer rewrites update formulas and reports what it
proved (parity has nothing to optimize; reach_u's insert rule loses
both quantifiers to the one-point rule):

  $ dynfo_cli optimize parity
  parity           work n^1 -> n^1, size 26 -> 26, 0 rewrite(s), 0 temp(s), 0 rejection(s)

  $ dynfo_cli optimize reach_u
  reach_u          work n^5 -> n^5, size 170 -> 181, 3 rewrite(s), 0 temp(s), 0 rejection(s)
    on_del E / rule PV           simplify
    on_ins E / rule E            simplify
    on_ins E / rule PV           simplify, one-point
  $ echo "exit: $?"
  exit: 0

optimize needs a problem or --all:

  $ dynfo_cli optimize 2>&1 | grep -c 'PROBLEM'
  2
