(* Tests for the commutativity analysis and the serving-side laws it
   licenses. Three angles: the registry matrices must only claim what
   the model checker confirmed (every [Commute] cell and believed law
   carries checks); hand-mutated programs with provably order-dependent
   updates must never come out [Commute]; and the laws the oracle
   answers are re-verified here as qcheck properties over reachable
   states across all four backends — an independent replay of the
   analysis' own model checking, from fresh seeds. *)

open Dynfo_logic
open Dynfo
open Dynfo_programs
module C = Dynfo_analysis.Commute
module Advisor = Dynfo_analysis.Advisor
module Calibration = Dynfo_analysis.Calibration

let () =
  Advisor.install ();
  C.install ()

let check = Alcotest.check
let tb = Alcotest.bool
let ti = Alcotest.int
let find name = (Registry.find name).Registry.program
let op kind rel arity = { C.op_kind = kind; op_rel = rel; op_arity = arity }
let backends = [ `Tuple; `Bulk; `Delta; `Auto ]

(* --- matrices claim only what was confirmed ------------------------------ *)

let test_matrix_confirmed () =
  List.iter
    (fun name ->
      let m = C.matrix_of (find name) in
      List.iter
        (fun (c : C.cell) ->
          match c.C.c_verdict with
          | C.Commute ->
              check tb
                (Printf.sprintf "%s: %s/%s confirmed" name
                   (C.op_name c.C.c_left) (C.op_name c.C.c_right))
                true (c.C.c_checks > 0);
              check tb (name ^ ": commute cell carries a domain") true
                (c.C.c_domain <> None)
          | C.Conflict | C.Unknown -> ())
        m.C.m_cells;
      List.iter
        (fun (o : C.op_report) ->
          if o.C.or_idempotent.C.law_holds then
            check tb
              (name ^ ": " ^ C.op_name o.C.or_op ^ " idempotence checked")
              true
              (o.C.or_idempotent.C.law_checks > 0);
          if o.C.or_nop.C.law_holds then
            check tb
              (name ^ ": " ^ C.op_name o.C.or_op ^ " no-op law checked")
              true
              (o.C.or_nop.C.law_checks > 0))
        m.C.m_ops)
    [ "parity"; "reach_u"; "matching" ]

let test_known_verdicts () =
  let m = C.matrix_of (find "parity") in
  let ins_m = op `Ins "M" 1 and del_m = op `Del "M" 1 in
  check tb "parity ins/ins commutes" true (C.verdict m ins_m ins_m = C.Commute);
  check tb "parity ins/del commutes" true (C.verdict m ins_m del_m = C.Commute);
  let mr = C.matrix_of (find "reach_u") in
  let ins_e = op `Ins "E" 2 and del_e = op `Del "E" 2 in
  check tb "reach_u ins/ins conflicts" true
    (C.verdict mr ins_e ins_e = C.Conflict);
  check tb "reach_u del/del commutes" true
    (C.verdict mr del_e del_e = C.Commute);
  (match C.find_cell mr del_e del_e with
  | Some c ->
      check tb "reach_u del/del holds on the reachable domain only" true
        (c.C.c_domain = Some C.Reachable)
  | None -> Alcotest.fail "reach_u del/del cell missing");
  (* set s / set t write distinct constants nothing else reads *)
  let set_s = op `Set "s" 1 and set_t = op `Set "t" 1 in
  check tb "reach_u set s/set t commutes" true
    (C.verdict mr set_s set_t = C.Commute);
  check tb "reach_u set s/set s conflicts (last writer wins)" true
    (C.verdict mr set_s set_s = C.Conflict)

(* --- mutations: provable conflicts are never called Commute -------------- *)

let m_vocab = Vocab.make ~rels:[ ("M", 1) ] ~consts:[]
let b_vocab = Vocab.make ~rels:[ ("b", 0) ] ~consts:[]

(* parity with the deletion flip replaced by an absorbing reset:
   [ins a; del b] leaves [b] cleared, [del b; ins a] leaves it set —
   the orders are distinguishable even on distinct arguments *)
let reset_parity =
  Program.make ~name:"parity-reset" ~input_vocab:m_vocab ~aux_vocab:b_vocab
    ~init:(fun n -> Structure.create ~size:n (Vocab.union m_vocab b_vocab))
    ~on_ins:
      [
        ( "M",
          Program.update ~params:[ "a" ]
            [
              Program.rule_s "M" [ "x" ] "M(x) | x = a";
              Program.rule_s "b" [] "(b() & M(a)) | (~b() & ~M(a))";
            ] );
      ]
    ~on_del:
      [
        ( "M",
          Program.update ~params:[ "a" ]
            [
              Program.rule_s "M" [ "x" ] "M(x) & x != a";
              Program.rule_s "b" [] "b() & ~b()";
            ] );
      ]
    ~query:(Parser.parse "b()") ()

(* a write/read overlap across ops: [ins] raises [A], [del] latches the
   pre-state of [A] into [B] — swapping the orders latches different
   values *)
let latch_vocab = Vocab.make ~rels:[ ("A", 0); ("B", 0) ] ~consts:[]

let latch =
  Program.make ~name:"latch" ~input_vocab:m_vocab ~aux_vocab:latch_vocab
    ~init:(fun n -> Structure.create ~size:n (Vocab.union m_vocab latch_vocab))
    ~on_ins:
      [ ("M", Program.update ~params:[ "a" ] [ Program.rule_s "A" [] "A() | ~A()" ]) ]
    ~on_del:
      [ ("M", Program.update ~params:[ "a" ] [ Program.rule_s "B" [] "A()" ]) ]
    ~query:(Parser.parse "B()") ()

let test_mutations_conflict () =
  let ins_m = op `Ins "M" 1 and del_m = op `Del "M" 1 in
  let m = C.analyze reset_parity in
  check tb "reset parity ins/del is not Commute" true
    (C.verdict m ins_m del_m <> C.Commute);
  let m2 = C.analyze latch in
  check tb "latch ins/del is not Commute" true
    (C.verdict m2 ins_m del_m <> C.Commute);
  (* the oracles built from these matrices refuse the swap *)
  let o = C.oracle_of reset_parity in
  check tb "reset parity oracle refuses swap" true
    (not (o.Runner.co_swap (Request.ins "M" [ 0 ]) (Request.del "M" [ 1 ])));
  let o2 = C.oracle_of latch in
  check tb "latch oracle refuses swap" true
    (not (o2.Runner.co_swap (Request.ins "M" [ 0 ]) (Request.del "M" [ 1 ])))

(* --- qcheck: the oracle's laws replayed on fresh reachable states -------- *)

let qprogs = [ "parity"; "reach_u"; "matching" ]

let qsetup (seed, prefix, name) =
  let e = Registry.find name in
  let size = 6 in
  let rng = Random.State.make [| 0xC0; seed |] in
  let pre = if prefix = 0 then [] else e.Registry.workload rng ~size ~length:prefix in
  let s0 = Runner.run (Runner.init e.Registry.program ~size) pre in
  (e, size, rng, s0)

let qargs = QCheck.(triple (int_range 1 100_000) (int_range 0 24) (oneofl qprogs))

let swap_qcheck =
  QCheck.Test.make
    ~name:"oracle-approved swaps preserve the state on every backend"
    ~count:60 qargs
    (fun (seed, prefix, name) ->
      let e, size, rng, s0 = qsetup (seed, prefix, name) in
      match e.Registry.workload rng ~size ~length:2 with
      | [ r1; r2 ] ->
          let oracle = Runner.commute_oracle e.Registry.program in
          (not (oracle.Runner.co_swap r1 r2))
          || List.for_all
               (fun backend ->
                 let a = Runner.step ~backend (Runner.step ~backend s0 r1) r2 in
                 let b = Runner.step ~backend (Runner.step ~backend s0 r2) r1 in
                 Structure.equal (Runner.structure a) (Runner.structure b))
               backends
      | _ -> true)

let dedupe_qcheck =
  QCheck.Test.make
    ~name:"verified idempotence: r;r == r on every backend" ~count:60 qargs
    (fun (seed, prefix, name) ->
      let e, size, rng, s0 = qsetup (seed, prefix, name) in
      match e.Registry.workload rng ~size ~length:1 with
      | [ r ] ->
          let oracle = Runner.commute_oracle e.Registry.program in
          (not (oracle.Runner.co_dedupe r))
          || List.for_all
               (fun backend ->
                 let s1 = Runner.step ~backend s0 r in
                 let s2 = Runner.step ~backend s1 r in
                 Structure.equal (Runner.structure s1) (Runner.structure s2))
               backends
      | _ -> true)

let elide_qcheck =
  QCheck.Test.make
    ~name:"verified no-op law: input-preserving requests change nothing"
    ~count:60 qargs
    (fun (seed, prefix, name) ->
      let e, size, rng, s0 = qsetup (seed, prefix, name) in
      match e.Registry.workload rng ~size ~length:1 with
      | [ r ] ->
          let oracle = Runner.commute_oracle e.Registry.program in
          (not (oracle.Runner.co_elidable r))
          || List.for_all
               (fun backend ->
                 let s1 = Runner.step ~backend s0 r in
                 (not (Structure.equal (Runner.input s1) (Runner.input s0)))
                 || Structure.equal (Runner.structure s1)
                      (Runner.structure s0))
               backends
      | _ -> true)

(* --- invisibility: updates provably unseen by a query -------------------- *)

let two_vocab = Vocab.make ~rels:[ ("R", 1); ("S", 1) ] ~consts:[]
let two_aux = Vocab.make ~rels:[ ("AR", 0); ("AS", 0) ] ~consts:[]

let two_sub =
  Program.make ~name:"two-sub" ~input_vocab:two_vocab ~aux_vocab:two_aux
    ~init:(fun n -> Structure.create ~size:n (Vocab.union two_vocab two_aux))
    ~on_ins:
      [
        ("R", Program.update ~params:[ "a" ] [ Program.rule_s "AR" [] "AR() | R(a)" ]);
        ("S", Program.update ~params:[ "a" ] [ Program.rule_s "AS" [] "AS() | S(a)" ]);
      ]
    ~queries:[ ("qr", [], Parser.parse "AR()"); ("qs", [], Parser.parse "AS()") ]
    ~query:(Parser.parse "AR() & AS()") ()

let test_invisibility () =
  let oracle = C.oracle_of two_sub in
  let ins_r = Request.ins "R" [ 0 ] and ins_s = Request.ins "S" [ 0 ] in
  check tb "ins R invisible to qs" true
    (oracle.Runner.co_invisible ins_r (Some "qs"));
  check tb "ins R visible to qr" true
    (not (oracle.Runner.co_invisible ins_r (Some "qr")));
  check tb "ins R visible to the program query" true
    (not (oracle.Runner.co_invisible ins_r None));
  check tb "ins S invisible to qr" true
    (oracle.Runner.co_invisible ins_s (Some "qr"));
  (* the independent subsystems are caught by the cheap syntactic layer *)
  let m = C.matrix_of two_sub in
  let opr = op `Ins "R" 1 and ops = op `Ins "S" 1 in
  check tb "R/S commute" true (C.verdict m opr ops = C.Commute);
  match C.find_cell m opr ops with
  | Some c -> check tb "syntactic source" true (c.C.c_source = C.Syntactic)
  | None -> Alcotest.fail "R/S cell missing"

(* --- the batch planner --------------------------------------------------- *)

let test_plan_groups () =
  let p = find "parity" in
  let reqs =
    [ Request.ins "M" [ 0 ]; Request.del "M" [ 1 ]; Request.ins "M" [ 2 ] ]
  in
  let groups = Runner.plan_groups p reqs in
  check ti "parity batch plans into 2 groups" 2 (List.length groups);
  let s0 = Runner.init p ~size:4 in
  let a = Runner.run s0 reqs in
  let b = Runner.run s0 (List.concat groups) in
  check tb "plan is equivalent to the submitted order" true
    (Structure.equal (Runner.structure a) (Runner.structure b));
  (* reach_u insertions conflict: the planner must not merge across *)
  let pr = find "reach_u" in
  let r = [ Request.ins "E" [ 0; 1 ]; Request.del "E" [ 2; 3 ]; Request.ins "E" [ 1; 2 ] ] in
  check ti "reach_u batch keeps 3 groups" 3
    (List.length (Runner.plan_groups pr r))

let batch_qcheck =
  QCheck.Test.make
    ~name:"step_batch under the commute oracle == run, every backend"
    ~count:40
    QCheck.(triple (int_range 1 100_000) (int_range 1 40) (oneofl qprogs))
    (fun (seed, length, name) ->
      let e = Registry.find name in
      let size = 6 in
      let rng = Random.State.make [| 0xBA; seed |] in
      let reqs = e.Registry.workload rng ~size ~length in
      let s0 = Runner.init e.Registry.program ~size in
      List.for_all
        (fun backend ->
          let a = Runner.run ~backend s0 reqs in
          let b = Runner.step_batch ~backend s0 reqs in
          Structure.equal (Runner.structure a) (Runner.structure b))
        backends)

(* --- the advisor's wall-clock cutoff ------------------------------------- *)

let test_advisor_wall_clock_flip () =
  let p = find "reach_u" in
  check tb "static advice is delta" true
    ((Advisor.of_program p).Advisor.backend = `Delta);
  (* the flip is driven by the µs model: nearly-free recomputes push
     the advice off delta at a concrete size, nearly-free retests keep
     it — asserted with explicit tables so the checked-in constants can
     be re-measured without touching this test *)
  let stingy =
    { Calibration.setup_us = 1000.; retest_us = 10.; full_tuple_us = 1e-4 }
  in
  let generous =
    { Calibration.setup_us = 1e-4; retest_us = 1e-4; full_tuple_us = 1000. }
  in
  let a = Advisor.of_program ~size:8 ~calibration:stingy p in
  check tb "stingy calibration flips off delta" true
    (a.Advisor.backend <> `Delta);
  check tb "flip lands on the fallback" true
    (a.Advisor.backend = (a.Advisor.fallback :> [ `Tuple | `Bulk | `Delta ]));
  let b = Advisor.of_program ~size:8 ~calibration:generous p in
  check tb "generous calibration keeps delta" true (b.Advisor.backend = `Delta);
  (* with the checked-in table the advice is exactly the break-even
     comparison over the static estimates *)
  List.iter
    (fun n ->
      let rules, frontier, space = Advisor.delta_estimates p ~size:n in
      let be = Calibration.break_even ~rules ~space () in
      let adv = Advisor.of_program ~size:n p in
      check tb
        (Printf.sprintf "advice at n=%d matches break-even" n)
        (float_of_int frontier <= be)
        (adv.Advisor.backend = `Delta))
    [ 2; 4; 8; 16; 32 ]

(* the flip happens *at* the break-even, not merely somewhere: solve
   for the retest constant that puts the break-even exactly on the
   estimated frontier, keep the measured setup/full constants, and
   nudge retest one percent to either side — the advice must flip
   across that boundary *)
let test_advisor_break_even_boundary () =
  let p = find "reach_u" in
  let n = 8 in
  let rules, frontier, space = Advisor.delta_estimates p ~size:n in
  let { Calibration.setup_us; full_tuple_us; _ } = Calibration.default in
  let exact =
    ((full_tuple_us *. float_of_int space) -. (setup_us *. float_of_int rules))
    /. float_of_int (max 1 frontier)
  in
  check tb "boundary is realisable with the measured constants" true
    (exact > 0. && frontier > 0);
  let at scale =
    { Calibration.setup_us; retest_us = exact *. scale; full_tuple_us }
  in
  let keep = Advisor.of_program ~size:n ~calibration:(at 0.99) p in
  let drop = Advisor.of_program ~size:n ~calibration:(at 1.01) p in
  check tb "frontier just under break-even keeps delta" true
    (keep.Advisor.backend = `Delta);
  check tb "frontier just past break-even flips to the fallback" true
    (drop.Advisor.backend
    = (drop.Advisor.fallback :> [ `Tuple | `Bulk | `Delta ]))

let () =
  Alcotest.run "commute"
    [
      ( "matrix",
        [
          Alcotest.test_case "commute cells are confirmed" `Quick
            test_matrix_confirmed;
          Alcotest.test_case "known verdicts" `Quick test_known_verdicts;
          Alcotest.test_case "mutated conflicts never Commute" `Quick
            test_mutations_conflict;
          Alcotest.test_case "invisibility" `Quick test_invisibility;
        ] );
      ( "laws",
        [
          QCheck_alcotest.to_alcotest swap_qcheck;
          QCheck_alcotest.to_alcotest dedupe_qcheck;
          QCheck_alcotest.to_alcotest elide_qcheck;
        ] );
      ( "planner",
        [
          Alcotest.test_case "plan_groups" `Quick test_plan_groups;
          QCheck_alcotest.to_alcotest batch_qcheck;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "wall-clock flip" `Quick
            test_advisor_wall_clock_flip;
          Alcotest.test_case "flip at the measured break-even" `Quick
            test_advisor_break_even_boundary;
        ] );
    ]
