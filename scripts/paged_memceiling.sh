#!/usr/bin/env bash
# Memory-ceiling regression for the paged bitset representation.
#
# Runs bench/memceiling twice under a 2 GiB address-space ceiling:
# the arity-3 program at n = 2048 needs ~1.09 GB per dense bitset and
# the bulk evaluator holds the relation plus at least one same-scope
# formula node live at once, so the dense arm provably cannot fit —
# it must die with Out_of_memory (exit 2). The paged arm must run to
# completion (exit 0), cross-checking the maintained relation against
# a brute-force oracle. Build happens before the ulimit so the
# ceiling only constrains the measured runs.
set -u

exe=_build/default/bench/memceiling/memceiling.exe
dune build bench/memceiling/memceiling.exe || exit 1

ulimit -v 2097152 # 2 GiB

if "$exe" dense 2048; then
  echo "FAIL: dense arm fit under the 2 GiB ceiling (no regression signal)"
  exit 1
fi
echo "dense arm hit the ceiling as expected"

if ! "$exe" paged 2048; then
  echo "FAIL: paged arm did not survive the 2 GiB ceiling"
  exit 1
fi
echo "memory ceiling: paged succeeds where dense cannot allocate"
