#!/usr/bin/env bash
# CI smoke for the serving daemon: start `dynfo serve` in the
# background, drive the whole protocol surface over one connection
# (create, batched update, query, snapshot, restore, stats, list),
# then load-generate every backend with an offline --verify replay,
# and finally assert the daemon shuts down cleanly and unlinks its
# socket. Uses the already-built binary so concurrent invocations do
# not fight over the dune build lock; override with DYNFO=... .
set -euo pipefail
cd "$(dirname "$0")/.."

DYNFO=${DYNFO:-_build/install/default/bin/dynfo_cli}
TMP=$(mktemp -d)
SOCK="$TMP/serve.sock"
SNAP="$TMP/smoke.snap"
LOG="$TMP/serve.log"
SERVE_PID=

cleanup() {
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$DYNFO" serve --socket "$SOCK" >"$LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || {
  echo "serve_smoke: daemon never bound $SOCK" >&2
  cat "$LOG" >&2
  exit 1
}

# The whole session lifecycle over one connection. A multi-element reqs
# array is one evaluation tick; the restored session must answer like
# the original.
RESP=$("$DYNFO" client --socket "$SOCK" <<EOF
{"id":1,"op":"create","session":"smoke","program":"reach_u","size":8,"backend":"delta"}
{"id":2,"op":"update","session":"smoke","reqs":["ins E (0,1)","ins E (1,2)","ins E (2,3)"]}
{"id":3,"op":"query","session":"smoke","args":[]}
{"id":4,"op":"snapshot","session":"smoke","path":"$SNAP"}
{"id":5,"op":"restore","session":"smoke2","path":"$SNAP","backend":"bulk"}
{"id":6,"op":"query","session":"smoke2","args":[]}
{"id":7,"op":"stats","session":"smoke"}
{"id":8,"op":"list"}
EOF
)
echo "$RESP"
if echo "$RESP" | grep -q '"ok":false'; then
  echo "serve_smoke: protocol error" >&2
  exit 1
fi
echo "$RESP" | grep -q '"applied":3' || {
  echo "serve_smoke: 3-request batch not applied as one call" >&2
  exit 1
}
orig=$(echo "$RESP" | sed -n 's/.*"id":3.*"result":\(true\|false\).*/\1/p')
rest=$(echo "$RESP" | sed -n 's/.*"id":6.*"result":\(true\|false\).*/\1/p')
[[ -n "$orig" && "$orig" == "$rest" ]] || {
  echo "serve_smoke: restored session answers $rest, original $orig" >&2
  exit 1
}

# Load-generate every backend. --verify replays the workload offline on
# the sequential runner and exits 1 unless the served answer matches;
# on top of that, require nonzero throughput and no dropped updates.
for backend in tuple bulk delta auto; do
  OUT=$("$DYNFO" loadgen reach_u --socket "$SOCK" --backend "$backend" \
    --length 256 --batch 16 --json --verify)
  echo "$OUT"
  echo "$OUT" | grep -q '"updates": 256' || {
    echo "serve_smoke: loadgen dropped updates on $backend" >&2
    exit 1
  }
  ups=$(echo "$OUT" | sed -n 's/.*"updates_per_s": \([0-9.]*\).*/\1/p')
  [[ -n "$ups" && "$ups" != "0.0" ]] || {
    echo "serve_smoke: zero throughput on $backend" >&2
    exit 1
  }
done

# Commute coalescing: both queue disciplines must verify against the
# offline replay, and the commute session must actually exploit its
# verified laws (nonzero dedupe/elide on parity's all-commute matrix).
for mode in fifo commute; do
  OUT=$("$DYNFO" loadgen parity --socket "$SOCK" --coalesce "$mode" \
    --length 256 --batch 16 --json --verify)
  echo "$OUT"
  echo "$OUT" | grep -q "\"coalesce\": \"$mode\"" || {
    echo "serve_smoke: loadgen did not run in $mode mode" >&2
    exit 1
  }
done
echo "$OUT" | grep -q '"deduped": 0' && {
  echo "serve_smoke: commute session deduped nothing on parity" >&2
  exit 1
}

# A commute-mode protocol exchange: duplicate requests in one batch are
# acknowledged in full, and stats exposes the coalescing counters.
RESP=$("$DYNFO" client --socket "$SOCK" <<EOF
{"id":10,"op":"create","session":"comm","program":"parity","size":8,"coalesce":"commute"}
{"id":11,"op":"update","session":"comm","reqs":["ins M (1)","ins M (1)","ins M (2)","ins M (2)"]}
{"id":12,"op":"query","session":"comm","args":[]}
{"id":13,"op":"stats","session":"comm"}
EOF
)
echo "$RESP"
if echo "$RESP" | grep -q '"ok":false'; then
  echo "serve_smoke: commute exchange protocol error" >&2
  exit 1
fi
echo "$RESP" | grep -q '"applied":4' || {
  echo "serve_smoke: duplicate batch not acknowledged in full" >&2
  exit 1
}
echo "$RESP" | grep -q '"deduped":2' || {
  echo "serve_smoke: commute stats do not show the 2 dedupes" >&2
  exit 1
}
echo "$RESP" | sed -n 's/.*"id":12[^}]*"result":\(true\|false\).*/\1/p' \
  | grep -q 'false' || {
  echo "serve_smoke: two distinct inserts must leave parity even" >&2
  exit 1
}

# Batch absorption over the wire: reach_u has no on_set block, so the
# definable-change analysis certifies `Absorb for set s/t — a 2-request
# wire batch must land input-only in exactly one evaluation tick; the
# ins* batch then streams its 3 edges under one delta scope.
RESP=$("$DYNFO" client --socket "$SOCK" <<EOF
{"id":20,"op":"create","session":"abs","program":"reach_u","size":8,"backend":"delta"}
{"id":21,"op":"stats","session":"abs"}
{"id":22,"op":"update","session":"abs","reqs":["set s 0","set t 3"]}
{"id":23,"op":"stats","session":"abs"}
{"id":24,"op":"update","session":"abs","reqs":["ins* E (0,1) (1,2) (2,3)"]}
{"id":25,"op":"query","session":"abs","args":[]}
{"id":26,"op":"stats","session":"abs"}
EOF
)
echo "$RESP"
if echo "$RESP" | grep -q '"ok":false'; then
  echo "serve_smoke: absorption exchange protocol error" >&2
  exit 1
fi
echo "$RESP" | grep '"id":21' | grep -q '"ticks":0' || {
  echo "serve_smoke: fresh session should have 0 ticks" >&2
  exit 1
}
echo "$RESP" | grep '"id":23' | grep -q '"ticks":1' || {
  echo "serve_smoke: set batch did not land in a single tick" >&2
  exit 1
}
echo "$RESP" | grep '"id":23' | grep -q '"absorbed":2' || {
  echo "serve_smoke: set batch was not absorbed input-only" >&2
  exit 1
}
echo "$RESP" | grep '"id":26' | grep -q '"streamed":3' || {
  echo "serve_smoke: ins* batch did not stream under one delta scope" >&2
  exit 1
}
echo "$RESP" | sed -n 's/.*"id":25[^}]*"result":\(true\|false\).*/\1/p' \
  | grep -q 'true' || {
  echo "serve_smoke: 0->3 path with s=0 t=3 must answer true" >&2
  exit 1
}

# Clean shutdown: the daemon replies first, then exits and unlinks.
echo '{"id":99,"op":"shutdown"}' | "$DYNFO" client --socket "$SOCK" \
  | grep -q '"ok":true'
for _ in $(seq 1 100); do kill -0 "$SERVE_PID" 2>/dev/null || break; sleep 0.1; done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "serve_smoke: daemon still running after shutdown" >&2
  exit 1
fi
[[ ! -e "$SOCK" ]] || {
  echo "serve_smoke: socket not unlinked on shutdown" >&2
  exit 1
}
SERVE_PID=
echo "serve_smoke: OK"
